// Package engine unifies the repository lifecycle — load → site build →
// index build → publish — behind one pipeline producing immutable
// Generations. Every serving surface (static site, /api/v1 query
// service, /readyz readiness, access-log tagging, dashboard metrics)
// reads the single published *Generation through one atomic pointer, so
// a live-reload swap is structurally race-free: there is exactly one
// publication point, and everything downstream is either a reader of
// that pointer or a subscriber notified after the swap.
//
// Lifecycle:
//
//	load (corpus)  →  site build (page graph)  →  index build (TF-IDF)
//	      └──────────────── publish ────────────────┘
//	                         │
//	          subscribers: query cache purge,
//	          access-log generation tag, metrics
//
// The pipeline is driven by Rebuild (first build, `-watch` rebuilds,
// `pdcu build`); Load alone serves the read-only commands that need the
// corpus but no site.
package engine

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdcunplugged/internal/core"
	"pdcunplugged/internal/corpus"
	"pdcunplugged/internal/curation"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/fleet"
	"pdcunplugged/internal/obs/slo"
	"pdcunplugged/internal/obs/trace"
	"pdcunplugged/internal/query"
	"pdcunplugged/internal/search"
	"pdcunplugged/internal/site"
	"pdcunplugged/internal/watch"
)

var (
	engineGeneration = obs.Default().Gauge("pdcu_engine_generation",
		"Monotonic sequence number of the currently-published generation.")
	enginePublish = obs.Default().Histogram("pdcu_engine_publish_duration_seconds",
		"Wall time of a generation publish: the pointer swap plus every subscriber hook.",
		obs.DefBuckets())
	engineRebuilds = obs.Default().Counter("pdcu_engine_rebuilds_total",
		"Pipeline runs, by outcome (published or failed).", "outcome")
	// buildInfo attributes every scrape (and every BENCH_*.json baseline
	// stamped from it) to a concrete binary: the labels carry the build
	// identity and the value carries the published generation sequence,
	// so one series answers "which build served which generation".
	buildInfo = obs.Default().Gauge("pdcu_build_info",
		"Build identity (labels) and currently-published generation seq (value).",
		"version", "go_version", "revision")
)

// genLen truncates the corpus fingerprint to the generation tag every
// surface reports (matches the query API's generation field).
const genLen = 16

// Generation is one immutable published build of the whole system: the
// validated repository, the rendered site, the search index, and the
// identity under which every cache entry and response derived from them
// is keyed. Generations are never mutated after Publish; readers hold
// whichever one they loaded for as long as they need it.
type Generation struct {
	// Seq is the engine-local monotonic publish counter (1 = first).
	Seq uint64
	// Repo is the validated, taxonomy-indexed corpus.
	Repo *core.Repository
	// Site is the rendered static site.
	Site *site.Site
	// Index is the TF-IDF search index over Repo.
	Index *search.Index
	// Fingerprint is the full content hash of the corpus.
	Fingerprint string
	// ID is the short generation tag (the fingerprint's first 16 hex
	// characters) reported by /readyz, the query API, and the
	// Pdcu-Generation response header.
	ID string
	// BuiltAt is when the pipeline produced this generation.
	BuiltAt time.Time
	// TraceID links to the rebuild trace at /debug/obs/traces/<id>.
	TraceID string
	// Stats summarizes the site build (jobs, cache hits, duration).
	Stats site.BuildStats
	// IndexStats summarizes the search index build (docs, vocabulary,
	// postings and bitset footprints, build duration).
	IndexStats search.IndexStats

	handler http.Handler
	snap    *query.Snapshot
}

// Handler returns the static-site handler for this generation.
func (g *Generation) Handler() http.Handler { return g.handler }

// Snapshot returns the query-service view of this generation.
func (g *Generation) Snapshot() *query.Snapshot { return g.snap }

// NewGeneration wires the serving surfaces — site handler and query
// snapshot — for a generation assembled outside the pipeline (a decoded
// replication snapshot). The exported fields of g must already be
// populated; the result is servable through Adopt exactly like a
// pipeline-built generation.
func NewGeneration(g Generation) *Generation {
	g.handler = g.Site.Handler()
	g.snap = &query.Snapshot{Repo: g.Repo, Index: g.Index, Generation: g.ID}
	return &g
}

// Outcome records one pipeline run for /readyz: operators see whether
// the corpus they just edited actually went live, and which trace to
// open when it did not.
type Outcome struct {
	Time     time.Time `json:"time"`
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Duration string    `json:"duration"`
	TraceID  string    `json:"trace_id,omitempty"`
}

// Engine owns the load→build→index→publish pipeline and the single
// atomic pointer its Generations are published through. All rebuilds
// are serialized; readers never block.
type Engine struct {
	cfg     Config
	builder *site.Builder
	tracer  *trace.Tracer
	started time.Time

	cur atomic.Pointer[Generation]
	seq atomic.Uint64

	// mu serializes the pipeline and guards subs; publish runs under it
	// so subscribers observe generations in publish order.
	mu   sync.Mutex
	subs []func(*Generation)

	outcome atomic.Pointer[Outcome]
	genTag  atomic.Value // string: current generation ID for access logs

	queryOnce sync.Once
	query     *query.Service

	rollupOnce sync.Once
	rollup     *obs.Rollup

	sloOnce sync.Once
	slo     *slo.Engine

	fleetOnce sync.Once
	fleet     *fleet.Scraper

	profOnce sync.Once
	profiles *fleet.ProfileRing

	// peerSource supplies the fleet roster (func() []fleet.Peer); set by
	// the serve command once the replication role is known, read lazily
	// at scrape time so wiring order does not matter.
	peerSource atomic.Value

	// readyExtra contributes role/lag fields to /readyz
	// (func() map[string]any).
	readyExtra atomic.Value

	// selfNode is this node's label in federated fleet metrics (string);
	// defaults to "leader", overridden by the serve command for
	// followers. Must be set before the first Fleet() call.
	selfNode atomic.Value
}

// New validates cfg and returns an engine with no generation published
// yet. The engine's tracer is built from the config's sampling knobs;
// the first Rebuild publishes generation 1.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		builder: site.NewBuilder(site.Options{Workers: cfg.Jobs}),
		tracer: trace.New(trace.Options{
			SampleRate:    cfg.TraceSample,
			SlowThreshold: cfg.TraceSlow,
		}),
		started: time.Now(),
	}
	e.genTag.Store("")
	// The access-log generation tag is the first subscriber: every
	// request logged after a swap carries the generation that served it.
	e.Subscribe(func(g *Generation) { e.genTag.Store(g.ID) })
	bi := ReadBuildInfo()
	info := buildInfo.With(bi.Version, bi.GoVersion, bi.Revision)
	info.Set(0)
	e.Subscribe(func(g *Generation) { info.Set(float64(g.Seq)) })
	if cfg.ProfileOnBreach {
		// Breach-triggered profiling: evaluate objectives on every rollup
		// tick (hooks run outside the rollup lock) and capture profiles in
		// the background on each ok→breached transition, tagged with the
		// objectives that tripped.
		e.SLO().SetOnBreach(func(objectives []string) {
			obs.Logger().Warn("SLO breach: capturing profiles", "objectives", objectives)
			e.Profiles().CaptureAsync("breach", strings.Join(objectives, ","))
		})
		e.Rollup().AddHook(func() { e.SLO().Evaluate() })
	}
	return e, nil
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Tracer returns the engine's tracer (for trace.SetDefault wiring).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// StartedAt is when the engine was constructed (process uptime anchor).
func (e *Engine) StartedAt() time.Time { return e.started }

// Current returns the published generation, or nil before the first
// successful Rebuild. This pointer load is the only way any serving
// surface observes state, which is what makes swaps race-free.
func (e *Engine) Current() *Generation { return e.cur.Load() }

// LastOutcome returns the most recent pipeline outcome (nil before the
// first Rebuild attempt).
func (e *Engine) LastOutcome() *Outcome { return e.outcome.Load() }

// Subscribe registers fn to run after every publish, in registration
// order, under the publish lock. A subscriber registered after a
// generation is already live is called immediately with it, so late
// wiring cannot miss the current state.
func (e *Engine) Subscribe(fn func(*Generation)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subs = append(e.subs, fn)
	if g := e.cur.Load(); g != nil {
		fn(g)
	}
}

// Load runs the load stage only: the federated corpus from the
// configured adapters (catalogs + -src directories), or the embedded
// curation when none are configured. It is the single repository entry
// point shared by `pdcu build`, `pdcu serve`, and `pdcu search`.
func (e *Engine) Load(ctx context.Context) (*core.Repository, error) {
	_, span := trace.StartSpan(ctx, "engine.load")
	var repo *core.Repository
	sources, err := e.cfg.CorpusSources()
	if err == nil {
		if len(sources) == 0 {
			// Unattributed single-corpus load: keeps the embedded
			// curation's fingerprints (and the statistics tests that pin
			// them) identical to the pre-federation era.
			repo, err = curation.Repository()
		} else {
			repo, err = corpus.LoadAll(sources...)
		}
	}
	if err != nil {
		span.FailErr(err)
		span.End()
		return nil, err
	}
	span.SetAttr("activities", strconv.Itoa(repo.Len()))
	span.End()
	return repo, nil
}

// Rebuild runs the full pipeline — load, site build, index build — and
// publishes the result. On any error the previously-published
// generation stays live and the failure is recorded for /readyz. The
// whole run is one forced trace root (engine.rebuild), so its waterfall
// is always retrievable regardless of the sample rate.
func (e *Engine) Rebuild(ctx context.Context) (*Generation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rebuildLocked(ctx)
}

func (e *Engine) rebuildLocked(ctx context.Context) (gen *Generation, err error) {
	ctx, root := e.tracer.StartForced(ctx, "engine.rebuild")
	start := time.Now()
	defer func() {
		o := &Outcome{
			Time:     start,
			OK:       err == nil,
			Duration: time.Since(start).Round(time.Millisecond).String(),
		}
		if err != nil {
			o.Error = err.Error()
			root.FailErr(err)
			engineRebuilds.With("failed").Inc()
		} else {
			engineRebuilds.With("published").Inc()
		}
		o.TraceID = root.TraceID().String()
		root.End()
		e.outcome.Store(o)
	}()

	root.SetAttr("src", e.cfg.SourcesSummary())
	repo, err := e.Load(ctx)
	if err != nil {
		return nil, err
	}
	s, err := e.builder.BuildContext(ctx, repo)
	if err != nil {
		return nil, err
	}
	snap := query.NewSnapshotContext(ctx, repo)
	gen = &Generation{
		Seq:         e.seq.Add(1),
		Repo:        repo,
		Site:        s,
		Index:       snap.Index,
		Fingerprint: repo.Fingerprint(),
		ID:          snap.Generation,
		BuiltAt:     time.Now(),
		TraceID:     root.TraceID().String(),
		Stats:       e.builder.LastStats(),
		IndexStats:  snap.Index.Stats(),
		handler:     s.Handler(),
		snap:        snap,
	}
	root.SetAttr("generation", gen.ID)
	e.publishLocked(gen)
	return gen, nil
}

// Adopt publishes an externally-built generation — one decoded from a
// replication snapshot rather than produced by the local pipeline. The
// adopted Seq must advance past the published one (a follower never
// moves backwards; a replayed or stale snapshot returns false and
// leaves the current generation live). The local rebuild counter is
// pulled forward so a later pipeline run cannot mint a Seq the fleet
// has already seen from this process.
func (e *Engine) Adopt(g *Generation) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur := e.cur.Load(); cur != nil && g.Seq <= cur.Seq {
		return false
	}
	for {
		cur := e.seq.Load()
		if cur >= g.Seq || e.seq.CompareAndSwap(cur, g.Seq) {
			break
		}
	}
	e.publishLocked(g)
	return true
}

// publishLocked swaps the current generation and notifies subscribers.
// Callers hold e.mu, so publishes (and the subscriber notifications
// inside them) are totally ordered.
func (e *Engine) publishLocked(g *Generation) {
	done := enginePublish.With().Timer()
	e.cur.Store(g)
	for _, fn := range e.subs {
		fn(g)
	}
	engineGeneration.Set(float64(g.Seq))
	// Refresh per-source corpus gauges here rather than in the pipeline:
	// adopted replica snapshots publish too, so followers report the
	// leader's source mix.
	corpus.ObserveRepository(g.Repo)
	done()
	obs.Logger().Info("generation published",
		"seq", g.Seq, "generation", g.ID,
		"pages", g.Site.Len(), "activities", g.Repo.Len(),
		"index_vocab", g.IndexStats.Vocabulary,
		"index_postings", g.IndexStats.Postings,
		"index_bytes", g.IndexStats.PostingsBytes+g.IndexStats.BitsetBytes)
}

// Query returns the engine's query service. It reads snapshots straight
// through the engine's generation pointer — the service holds no state
// of its own to fall out of sync — and its result cache is purged by a
// publish subscriber.
func (e *Engine) Query() *query.Service {
	e.queryOnce.Do(func() {
		e.query = query.NewSource(func() *query.Snapshot {
			if g := e.cur.Load(); g != nil {
				return g.snap
			}
			return nil
		}, query.Options{
			RateLimit:   e.cfg.Rate,
			Burst:       e.cfg.Burst,
			CacheSize:   e.cfg.CacheSize,
			ContribRate: e.cfg.ContribRate,
		})
		e.Subscribe(func(*Generation) { e.query.Purge() })
	})
	return e.query
}

// Rollup returns the rolling time-series aggregator behind /debug/obs,
// created on first use with the runtime collector attached. Start it
// with Rollup().Run(ctx).
func (e *Engine) Rollup() *obs.Rollup {
	e.rollupOnce.Do(func() {
		e.rollup = obs.NewRollup(obs.Default(), 5*time.Second, 120)
		e.rollup.AddHook(obs.NewRuntimeCollector(obs.Default()).Collect)
	})
	return e.rollup
}

// SLO returns the engine's objective evaluator, created on first use
// over the engine's rollup with the default serving objectives. It
// backs the /slo endpoint, the dashboard SLO panel, and the pdcu_slo_*
// gauges; the load-test gate consumes its verdicts.
func (e *Engine) SLO() *slo.Engine {
	e.sloOnce.Do(func() {
		e.slo = slo.New(obs.Default(), e.Rollup(), slo.DefaultObjectives(), slo.Options{})
	})
	return e.slo
}

// SetPeerSource supplies the current fleet roster: the leader derives
// it from follower heartbeats, a follower points it at its leader. The
// scraper and the trace-stitching view both read it at request time.
func (e *Engine) SetPeerSource(fn func() []fleet.Peer) {
	e.peerSource.Store(fn)
}

// Peers resolves the current fleet roster (empty before SetPeerSource).
func (e *Engine) Peers() []fleet.Peer {
	if fn, _ := e.peerSource.Load().(func() []fleet.Peer); fn != nil {
		return fn()
	}
	return nil
}

// Fleet returns the metrics federator behind /metrics/fleet and the
// dashboard Fleet panel, created on first use over the default registry
// with the engine's peer source. Start the background loop with
// Fleet().Run(ctx) when cfg.FleetScrape is set.
func (e *Engine) Fleet() *fleet.Scraper {
	e.fleetOnce.Do(func() {
		interval := e.cfg.FleetScrape
		if interval <= 0 {
			interval = 5 * time.Second
		}
		self := "leader"
		if s, _ := e.selfNode.Load().(string); s != "" {
			self = s
		}
		e.fleet = fleet.New(obs.Default(), fleet.Options{
			Interval: interval,
			SelfNode: self,
			Peers:    e.Peers,
		})
	})
	return e.fleet
}

// SetSelfNode names this node in federated fleet metrics. The serve
// command calls it with the follower's node name before the mux is
// built; leaders keep the default "leader" label.
func (e *Engine) SetSelfNode(name string) {
	e.selfNode.Store(name)
}

// Profiles returns the breach-evidence capture ring, created on first
// use with the configured CPU window. New wires it to the SLO engine's
// breach transitions when cfg.ProfileOnBreach is set; operators can
// always trigger a manual capture via POST /debug/obs/profile.
func (e *Engine) Profiles() *fleet.ProfileRing {
	e.profOnce.Do(func() {
		e.profiles = fleet.NewProfileRing(fleet.ProfileOptions{
			CPUDuration: e.cfg.ProfileCPU,
		})
	})
	return e.profiles
}

// SetReadyExtra registers a hook whose fields are merged into the
// /readyz body — the serve command uses it to report the replication
// role, sequence position, and fleet lag without the engine knowing
// about replication.
func (e *Engine) SetReadyExtra(fn func() map[string]any) {
	e.readyExtra.Store(fn)
}

func (e *Engine) readyExtras() map[string]any {
	if fn, _ := e.readyExtra.Load().(func() map[string]any); fn != nil {
		return fn()
	}
	return nil
}

// Watch drives the live-reload loop: poll every -src directory, run the
// pipeline on any change, keep the previous generation on failure. One
// watcher goroutine per source; a change in any directory rebuilds the
// whole federated generation. Blocks until ctx is done.
func (e *Engine) Watch(ctx context.Context) error {
	log := obs.Logger()
	onChange := func() {
		gen, err := e.Rebuild(ctx)
		if err != nil {
			log.Warn("rebuild failed; keeping previous generation", "err", err)
			return
		}
		st := gen.Stats
		log.Info("site rebuilt",
			"seq", gen.Seq, "generation", gen.ID,
			"pages", gen.Site.Len(), "jobs", st.Jobs,
			"cache_hits", st.CacheHits, "cache_misses", st.CacheMisses,
			"duration", st.Duration.Round(time.Millisecond).String(),
			"trace_id", gen.TraceID)
	}
	if len(e.cfg.Srcs) == 1 {
		return watch.Watch(ctx, e.cfg.Srcs[0].Path, e.cfg.Poll, onChange)
	}
	errs := make(chan error, len(e.cfg.Srcs))
	for _, spec := range e.cfg.Srcs {
		go func(dir string) {
			errs <- watch.Watch(ctx, dir, e.cfg.Poll, onChange)
		}(spec.Path)
	}
	var first error
	for range e.cfg.Srcs {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// logGeneration is the access-log hook: the generation tag the engine's
// subscriber keeps current.
func (e *Engine) logGeneration() []any {
	if tag, _ := e.genTag.Load().(string); tag != "" {
		return []any{"generation", tag}
	}
	return nil
}
