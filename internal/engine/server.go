package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"time"

	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/dash"
)

// BuildInfo is the binary provenance block of /readyz, the
// pdcu_build_info gauge, and every BENCH_*.json baseline, read from the
// module metadata the Go linker embeds.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// ReadBuildInfo extracts the provenance block for this binary.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Version = bi.Main.Version
	if out.Version == "" {
		out.Version = "(devel)"
	}
	out.GoVersion = bi.GoVersion
	out.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// Middleware returns the request-metrics/tracing middleware built from
// the engine's config: it records RED metrics, continues inbound
// traceparent traces, and samples access logs. The serve command wraps
// the replication endpoints with it so a follower's traceparent-carrying
// snapshot fetch records a leader-side span in the same trace.
func (e *Engine) Middleware() *obs.HTTPMetrics {
	return obs.NewHTTPMetrics(obs.Default()).
		WithTracer(e.tracer).
		WithLogAttrs(e.logGeneration).
		WithLogSample(e.cfg.LogSample)
}

// Mux assembles the full serve handler tree. Every serving surface
// reads only through the engine's generation pointer: the static site
// and its Pdcu-Generation header, the /api/v1 query service, and
// /readyz all load the same *Generation, so no request can observe two
// generations at once and a publish is visible to all three surfaces at
// the same instant. Operational endpoints (/metrics, /healthz, /readyz,
// /debug/obs, optional /debug/pprof/) sit outside the request-metrics
// middleware so scrapes do not count as site traffic.
func (e *Engine) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mw := e.Middleware()
	mux.Handle("/metrics", obs.Default().Handler())
	mux.Handle("/metrics/fleet", e.Fleet().Handler())
	// Liveness: the process is up and serving its mux. Deliberately
	// constant-cost — orchestrators hammer this.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","uptime_seconds":%.0f}`+"\n",
			time.Since(e.started).Seconds())
	})
	// Readiness: 503 until the first generation is published, then the
	// published generation's identity, counts, the last pipeline
	// outcome, and build info.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		g := e.Current()
		if g == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			enc.Encode(map[string]any{
				"status": "starting",
				"reason": "first generation not yet published",
			})
			return
		}
		body := map[string]any{
			"status":         "ready",
			"generation":     g.ID,
			"seq":            g.Seq,
			"pages":          g.Site.Len(),
			"activities":     g.Repo.Len(),
			"built_at":       g.BuiltAt,
			"uptime_seconds": time.Since(e.started).Seconds(),
			"last_rebuild":   e.LastOutcome(),
			"build":          ReadBuildInfo(),
		}
		// Replication extras (role, position, fleet lag) merge in when
		// the serve command has registered them.
		for k, v := range e.readyExtras() {
			body[k] = v
		}
		enc.Encode(body)
	})
	mux.Handle("/api/v1/", mw.Wrap(e.Query().Handler()))
	// SLO verdict: /readyz answers "is the process serving", /slo
	// answers "is it serving WELL" — 503 while any declared objective
	// is breached, with the full burn-rate accounting in the body.
	mux.Handle("/slo", e.SLO().Handler())
	dashHandler := dash.Handler(dash.Config{
		Registry: obs.Default(),
		Rollup:   e.Rollup(),
		Tracer:   e.tracer,
		SLO:      e.SLO(),
		Fleet:    e.Fleet(),
		Profiles: e.Profiles(),
		Peers:    e.Peers,
	})
	mux.Handle("/debug/obs", dashHandler)
	mux.Handle("/debug/obs/", dashHandler)
	// Profile capture endpoints: longest-prefix routing lets these win
	// over the dashboard's /debug/obs/ subtree.
	prof := e.Profiles().Handler()
	mux.Handle("/debug/obs/profile", prof)
	mux.Handle("/debug/obs/profiles", prof)
	mux.Handle("/debug/obs/profiles/", prof)
	if e.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", mw.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g := e.Current()
		if g == nil {
			http.Error(w, "site warming up", http.StatusServiceUnavailable)
			return
		}
		// One pointer load serves both the header and the content, so
		// the advertised generation always matches the bytes served.
		w.Header().Set("Pdcu-Generation", g.ID)
		g.Handler().ServeHTTP(w, r)
	})))
	return mux
}
