package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"pdcunplugged/internal/curation"
	"pdcunplugged/internal/obs"
)

// smallCorpus writes a handful of curated activities to a temp dir, so
// pipeline tests run against a real-but-cheap source tree.
func smallCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	n := 0
	for slug, content := range curation.Files() {
		if err := os.WriteFile(filepath.Join(dir, slug+".md"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		n++
		if n == 3 {
			break
		}
	}
	return dir
}

func newTestEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := Defaults()
	cfg.Rate = 0
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRebuildPublishes(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Srcs = DirSources(smallCorpus(t)) })
	if e.Current() != nil {
		t.Fatal("a generation was published before the first Rebuild")
	}
	gen, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Current(); got != gen {
		t.Fatalf("Current() = %p, want the generation Rebuild returned (%p)", got, gen)
	}
	if gen.Seq != 1 {
		t.Errorf("first Seq = %d, want 1", gen.Seq)
	}
	if gen.ID == "" || gen.Fingerprint == "" || gen.ID != gen.Fingerprint[:len(gen.ID)] {
		t.Errorf("generation identity ID=%q Fingerprint=%q", gen.ID, gen.Fingerprint)
	}
	if gen.Repo == nil || gen.Site == nil || gen.Index == nil || gen.Handler() == nil || gen.Snapshot() == nil {
		t.Error("generation is missing a pipeline product")
	}
	if gen.BuiltAt.IsZero() || gen.TraceID == "" {
		t.Errorf("generation metadata BuiltAt=%v TraceID=%q", gen.BuiltAt, gen.TraceID)
	}
	out := e.LastOutcome()
	if out == nil || !out.OK || out.TraceID != gen.TraceID {
		t.Errorf("outcome = %+v, want success carrying the rebuild trace", out)
	}
}

func TestRebuildFailureKeepsPreviousGeneration(t *testing.T) {
	dir := smallCorpus(t)
	e := newTestEngine(t, func(c *Config) { c.Srcs = DirSources(dir) })
	first, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.md"), []byte("---\ntitle: unterminated\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Rebuild(context.Background()); err == nil {
		t.Fatal("rebuild of a broken corpus should error")
	}
	if e.Current() != first {
		t.Error("failed rebuild replaced the published generation")
	}
	out := e.LastOutcome()
	if out == nil || out.OK || out.Error == "" || out.TraceID == "" {
		t.Errorf("failure outcome = %+v, want !OK with error and trace", out)
	}
}

// TestSubscribers pins the hook contract: subscribers run in
// registration order on every publish, and a subscriber registered
// after a generation is live is caught up immediately.
func TestSubscribers(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Srcs = DirSources(smallCorpus(t)) })
	var calls []string
	e.Subscribe(func(g *Generation) { calls = append(calls, "a:"+g.ID) })
	e.Subscribe(func(g *Generation) { calls = append(calls, "b:"+g.ID) })
	gen, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != "a:"+gen.ID || calls[1] != "b:"+gen.ID {
		t.Fatalf("publish calls = %v, want a then b with generation %s", calls, gen.ID)
	}
	// Late registration: the current generation is delivered at once.
	var late *Generation
	e.Subscribe(func(g *Generation) { late = g })
	if late != gen {
		t.Errorf("late subscriber got %v, want immediate catch-up with the live generation", late)
	}
}

// TestSharedLoadFingerprint pins the deduplicated repository entry
// point: the load stage alone (as `pdcu search` uses it) and the full
// pipeline (as build and serve use it) must agree on the corpus
// fingerprint for the same source, whether embedded or on disk.
func TestSharedLoadFingerprint(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"embedded", ""},
		{"srcdir", smallCorpus(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newTestEngine(t, func(c *Config) {
				if tc.src != "" {
					c.Srcs = DirSources(tc.src)
				}
			})
			repo, err := e.Load(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			gen, err := e.Rebuild(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if repo.Fingerprint() != gen.Fingerprint {
				t.Errorf("Load fingerprint %q != Rebuild fingerprint %q", repo.Fingerprint(), gen.Fingerprint)
			}
			if snapGen := gen.Snapshot().Generation; snapGen != gen.ID {
				t.Errorf("query snapshot generation %q != generation ID %q", snapGen, gen.ID)
			}
		})
	}
}

// TestQueryTracksEnginePointer pins the stateless query surface: the
// service created by Query() reads the engine's generation pointer, so
// a publish is visible to queries with no separate swap step.
func TestQueryTracksEnginePointer(t *testing.T) {
	dir := smallCorpus(t)
	e := newTestEngine(t, func(c *Config) { c.Srcs = DirSources(dir) })
	if snap := e.Query().Snapshot(); snap != nil {
		t.Fatalf("query snapshot before first publish = %v, want nil", snap)
	}
	gen, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Query().Snapshot(); got != gen.Snapshot() {
		t.Error("query service does not read the published generation's snapshot")
	}
	// Mutate and republish; the same service sees the new snapshot.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, entries[0].Name())); err != nil {
		t.Fatal(err)
	}
	gen2, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Query().Snapshot(); got != gen2.Snapshot() {
		t.Error("query service still serves the previous generation after a publish")
	}
}

// TestPublishMetrics pins the observability satellite: every publish
// sets the pdcu_engine_generation gauge to the new sequence number and
// observes the publish duration histogram.
func TestPublishMetrics(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Srcs = DirSources(smallCorpus(t)) })
	before := publishCount(t)
	gen, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snaps := obs.Default().Snapshot("pdcu_engine_generation")
	if len(snaps) != 1 || snaps[0].Value != float64(gen.Seq) {
		t.Errorf("pdcu_engine_generation = %+v, want gauge %d", snaps, gen.Seq)
	}
	if after := publishCount(t); after != before+1 {
		t.Errorf("publish histogram count %d -> %d, want one new observation", before, after)
	}
	gen2, err := e.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snaps = obs.Default().Snapshot("pdcu_engine_generation")
	if len(snaps) != 1 || snaps[0].Value != float64(gen2.Seq) {
		t.Errorf("after second publish gauge = %+v, want %d", snaps, gen2.Seq)
	}
}

func publishCount(t *testing.T) uint64 {
	t.Helper()
	snaps := obs.Default().Snapshot("pdcu_engine_publish_duration_seconds")
	if len(snaps) == 0 {
		return 0
	}
	return snaps[0].Count
}
