package engine

import (
	"flag"
	"fmt"
	"log/slog"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pdcunplugged/internal/corpus"
	"pdcunplugged/internal/obs"
)

// Config is the layered configuration of the generation pipeline and the
// commands built on it. Values resolve defaults ← PDCU_* environment ←
// command-line flags: Defaults() seeds every field, ApplyEnv overlays
// the environment, and the Bind*Flags helpers register flags whose
// defaults are the already-layered values, so an unset flag keeps the
// env (or default) value and a set flag wins.
type Config struct {
	// Srcs are directory corpus sources (activity .md trees), each one
	// corpus adapter. The -src flag is repeatable and accepts either a
	// bare path (name derived from the base name) or name=path. Together
	// with Catalogs an empty set selects the embedded curated corpus.
	Srcs SourceList
	// Catalogs are built-in named catalogs to federate ("builtin",
	// "csinparallel"); the -catalog flag is repeatable.
	Catalogs CatalogList
	// Out is the build output directory.
	Out string
	// Addr is the serve listen address.
	Addr string
	// Jobs bounds the site-render worker pool; must be >= 1.
	Jobs int
	// Watch polls Src for changes and rebuilds incrementally.
	Watch bool
	// Poll is the watch poll interval; must be > 0.
	Poll time.Duration
	// Rate admits this many query-API requests per second; 0 disables
	// admission control. Negative is rejected.
	Rate float64
	// Burst is the admission token-bucket capacity; 0 selects 2*Rate.
	// Negative is rejected.
	Burst int
	// ContribRate admits this many /api/v1/contrib/validate requests per
	// second through a bucket separate from Rate, so a burst of
	// submissions cannot crowd out read traffic (or vice versa). 0
	// disables contrib admission control; negative is rejected.
	ContribRate float64
	// CacheSize is the query result-cache capacity; 0 selects the
	// query package default. Negative is rejected.
	CacheSize int
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// LogLevel is the slog threshold: debug, info, warn, or error.
	LogLevel string
	// Verbose forces debug logging regardless of LogLevel.
	Verbose bool
	// TraceSample is the probability of retaining an ordinary trace;
	// must be in [0,1]. Error/slow/traceparent traces are always kept.
	TraceSample float64
	// TraceSlow pins any trace at least this long.
	TraceSlow time.Duration
	// LogSample is the access-log sample rate in [0,1]: 1 logs every
	// request, 0.01 every hundredth, 0 none. Errors and pinned-trace
	// requests always log.
	LogSample float64
	// Follow makes `pdcu serve` a read replica: instead of building
	// generations locally it pulls snapshots from the leader at this
	// base URL (long-poll on /replica/v1/snapshot). Empty = leader.
	Follow string
	// SnapshotDir persists the latest generation snapshot on every
	// publish and cold-starts from it on boot, so a restarted node is
	// ready in milliseconds while the first fetch/build proceeds in the
	// background. Empty disables persistence.
	SnapshotDir string
	// FleetScrape enables the fleet metrics federator: every interval
	// the node scrapes its peers' /metrics and re-serves the union on
	// /metrics/fleet. 0 disables the background loop (the endpoint still
	// answers with a one-shot scrape). Must be 0 or >= 1s.
	FleetScrape time.Duration
	// ProfileOnBreach captures bounded pprof profiles (cpu, heap,
	// goroutine) into the in-memory ring whenever an SLO objective
	// transitions to breached.
	ProfileOnBreach bool
	// ProfileCPU is the CPU-profile sampling window for breach and
	// manual captures; must be > 0.
	ProfileCPU time.Duration
	// Advertise is the base URL other fleet nodes can reach this node
	// at. A follower sends it on heartbeats so the leader can scrape it
	// and fetch its trace halves. Empty means "do not advertise".
	Advertise string
}

// SourceSpec names one directory corpus source. An empty Name derives
// one from the directory's base name at adapter-construction time.
type SourceSpec struct {
	Name string
	Path string
}

// SourceList is the repeatable -src flag value: each occurrence is a
// bare path or name=path.
type SourceList []SourceSpec

// String renders the list back to flag syntax.
func (l SourceList) String() string {
	parts := make([]string, len(l))
	for i, s := range l {
		if s.Name == "" {
			parts[i] = s.Path
		} else {
			parts[i] = s.Name + "=" + s.Path
		}
	}
	return strings.Join(parts, ",")
}

// Add parses one -src occurrence ("path" or "name=path") and appends it.
func (l *SourceList) Add(v string) error {
	spec := SourceSpec{Path: v}
	if i := strings.IndexByte(v, '='); i >= 0 {
		spec = SourceSpec{Name: v[:i], Path: v[i+1:]}
		if spec.Name == "" {
			return fmt.Errorf("-src %q: empty source name", v)
		}
	}
	if spec.Path == "" {
		return fmt.Errorf("-src %q: empty path", v)
	}
	*l = append(*l, spec)
	return nil
}

// DirSources is a test/embedding convenience: one unnamed source per path.
func DirSources(paths ...string) SourceList {
	l := make(SourceList, len(paths))
	for i, p := range paths {
		l[i] = SourceSpec{Path: p}
	}
	return l
}

// CatalogList is the repeatable -catalog flag value.
type CatalogList []string

// String renders the list back to flag syntax.
func (l CatalogList) String() string { return strings.Join(l, ",") }

// Add appends one catalog name.
func (l *CatalogList) Add(v string) error {
	if v == "" {
		return fmt.Errorf("-catalog: empty catalog name")
	}
	*l = append(*l, v)
	return nil
}

// srcFlag adapts SourceList to flag.Value with replace-on-first-set
// semantics: the first CLI occurrence clears the env/default layer, so a
// set flag wins wholesale instead of appending to the environment.
type srcFlag struct {
	list *SourceList
	set  bool
}

func (f *srcFlag) String() string {
	if f.list == nil {
		return ""
	}
	return f.list.String()
}

func (f *srcFlag) Set(v string) error {
	if !f.set {
		*f.list = nil
		f.set = true
	}
	return f.list.Add(v)
}

// catalogFlag mirrors srcFlag for CatalogList.
type catalogFlag struct {
	list *CatalogList
	set  bool
}

func (f *catalogFlag) String() string {
	if f.list == nil {
		return ""
	}
	return f.list.String()
}

func (f *catalogFlag) Set(v string) error {
	if !f.set {
		*f.list = nil
		f.set = true
	}
	return f.list.Add(v)
}

// Defaults returns the base configuration layer.
func Defaults() Config {
	return Config{
		Out:         "public",
		Addr:        ":8080",
		Jobs:        runtime.GOMAXPROCS(0),
		Poll:        500 * time.Millisecond,
		Rate:        100,
		ContribRate: 5,
		LogLevel:    "info",
		TraceSample: 0.1,
		TraceSlow:   250 * time.Millisecond,
		LogSample:   1,
		ProfileCPU:  5 * time.Second,
	}
}

// FromEnv layers the process environment over Defaults.
func FromEnv() (Config, error) {
	c := Defaults()
	err := c.ApplyEnv(nil)
	return c, err
}

// ApplyEnv overlays PDCU_* environment variables onto c. lookup is the
// variable source (nil selects os.LookupEnv; tests inject a map). A
// malformed value is an error naming the variable, not a silent skip.
func (c *Config) ApplyEnv(lookup func(string) (string, bool)) error {
	if lookup == nil {
		lookup = os.LookupEnv
	}
	var firstErr error
	fail := func(key, v, want string) {
		if firstErr == nil {
			firstErr = fmt.Errorf("%s=%q: not a valid %s", key, v, want)
		}
	}
	str := func(key string, dst *string) {
		if v, ok := lookup(key); ok {
			*dst = v
		}
	}
	integer := func(key string, dst *int) {
		if v, ok := lookup(key); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				fail(key, v, "integer")
				return
			}
			*dst = n
		}
	}
	boolean := func(key string, dst *bool) {
		if v, ok := lookup(key); ok {
			b, err := strconv.ParseBool(v)
			if err != nil {
				fail(key, v, "boolean")
				return
			}
			*dst = b
		}
	}
	float := func(key string, dst *float64) {
		if v, ok := lookup(key); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail(key, v, "number")
				return
			}
			*dst = f
		}
	}
	duration := func(key string, dst *time.Duration) {
		if v, ok := lookup(key); ok {
			d, err := time.ParseDuration(v)
			if err != nil {
				fail(key, v, "duration")
				return
			}
			*dst = d
		}
	}
	if v, ok := lookup("PDCU_SRC"); ok {
		c.Srcs = nil
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part == "" {
				continue
			}
			if err := c.Srcs.Add(part); err != nil {
				fail("PDCU_SRC", v, "source list (path or name=path, comma-separated)")
			}
		}
	}
	if v, ok := lookup("PDCU_CATALOG"); ok {
		c.Catalogs = nil
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part == "" {
				continue
			}
			c.Catalogs = append(c.Catalogs, part)
		}
	}
	str("PDCU_OUT", &c.Out)
	str("PDCU_ADDR", &c.Addr)
	integer("PDCU_JOBS", &c.Jobs)
	boolean("PDCU_WATCH", &c.Watch)
	duration("PDCU_POLL", &c.Poll)
	float("PDCU_RATE", &c.Rate)
	integer("PDCU_BURST", &c.Burst)
	float("PDCU_CONTRIB_RATE", &c.ContribRate)
	integer("PDCU_CACHE_SIZE", &c.CacheSize)
	boolean("PDCU_PPROF", &c.Pprof)
	str("PDCU_LOG_LEVEL", &c.LogLevel)
	float("PDCU_TRACE_SAMPLE", &c.TraceSample)
	duration("PDCU_TRACE_SLOW", &c.TraceSlow)
	float("PDCU_LOG_SAMPLE", &c.LogSample)
	str("PDCU_FOLLOW", &c.Follow)
	str("PDCU_SNAPSHOT_DIR", &c.SnapshotDir)
	duration("PDCU_FLEET_SCRAPE", &c.FleetScrape)
	boolean("PDCU_PROFILE_ON_BREACH", &c.ProfileOnBreach)
	duration("PDCU_PROFILE_CPU", &c.ProfileCPU)
	str("PDCU_ADVERTISE", &c.Advertise)
	return firstErr
}

// BindBuildFlags registers the `pdcu build` flags, defaulting to c's
// current (env-layered) values.
func (c *Config) BindBuildFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Out, "out", c.Out, "output directory")
	c.BindCorpusFlags(fs)
	fs.IntVar(&c.Jobs, "j", c.Jobs, "render workers (must be >= 1)")
	fs.BoolVar(&c.Verbose, "verbose", c.Verbose, "print per-phase span timings and debug logs")
}

// BindSearchFlags registers the `pdcu search` engine flags.
func (c *Config) BindSearchFlags(fs *flag.FlagSet) {
	c.BindCorpusFlags(fs)
}

// BindCorpusFlags registers the repeatable corpus-source flags shared by
// every command that loads a corpus.
func (c *Config) BindCorpusFlags(fs *flag.FlagSet) {
	fs.Var(&srcFlag{list: &c.Srcs}, "src", "directory of activity .md files as one corpus source; repeatable, accepts name=path (default: the embedded corpus)")
	fs.Var(&catalogFlag{list: &c.Catalogs}, "catalog", "built-in catalog to federate ("+strings.Join(corpus.CatalogNames(), ", ")+"); repeatable")
}

// BindServeFlags registers the `pdcu serve` flags, defaulting to c's
// current (env-layered) values.
func (c *Config) BindServeFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Addr, "addr", c.Addr, "listen address")
	c.BindCorpusFlags(fs)
	fs.IntVar(&c.Jobs, "j", c.Jobs, "render workers (must be >= 1)")
	fs.BoolVar(&c.Watch, "watch", c.Watch, "poll every -src directory for changes and rebuild incrementally (requires -src)")
	fs.DurationVar(&c.Poll, "poll", c.Poll, "poll interval for -watch")
	fs.Float64Var(&c.Rate, "rate", c.Rate, "query API admission rate in requests/second (0 disables)")
	fs.IntVar(&c.Burst, "burst", c.Burst, "query API token-bucket burst (0 = 2x rate)")
	fs.Float64Var(&c.ContribRate, "contrib-rate", c.ContribRate, "contribution-validation admission rate in requests/second, its own bucket (0 disables)")
	fs.BoolVar(&c.Pprof, "pprof", c.Pprof, "mount net/http/pprof under /debug/pprof/")
	fs.BoolVar(&c.Verbose, "verbose", c.Verbose, "debug logging (shorthand for -log-level debug)")
	fs.StringVar(&c.LogLevel, "log-level", c.LogLevel, "log threshold: debug, info, warn, or error")
	fs.Float64Var(&c.TraceSample, "trace-sample", c.TraceSample, "probability of retaining an ordinary trace (error/slow/traceparent traces are always kept)")
	fs.DurationVar(&c.TraceSlow, "trace-slow", c.TraceSlow, "pin any trace at least this long")
	fs.Float64Var(&c.LogSample, "log-sample", c.LogSample, "access-log sample rate in [0,1]; errors and pinned-trace requests always log")
	fs.StringVar(&c.Follow, "follow", c.Follow, "run as a read replica pulling generation snapshots from the leader at this base URL")
	fs.StringVar(&c.SnapshotDir, "snapshot-dir", c.SnapshotDir, "persist the latest generation snapshot here and cold-start from it on boot")
	fs.DurationVar(&c.FleetScrape, "fleet-scrape", c.FleetScrape, "scrape fleet peers' /metrics at this interval and federate them on /metrics/fleet (0 disables the loop)")
	fs.BoolVar(&c.ProfileOnBreach, "profile-on-breach", c.ProfileOnBreach, "capture pprof profiles into the in-memory ring when an SLO objective breaches")
	fs.DurationVar(&c.ProfileCPU, "profile-cpu", c.ProfileCPU, "CPU-profile sampling window for breach and manual captures")
	fs.StringVar(&c.Advertise, "advertise", c.Advertise, "base URL peers can reach this node at (followers send it on heartbeats for fleet scraping and trace stitching)")
}

// Validate rejects configurations that previously misbehaved silently.
// Every rule here is enforced for all commands, so `-j 0` fails the
// same way under build and serve.
func (c Config) Validate() error {
	if c.Jobs < 1 {
		return fmt.Errorf("-j must be >= 1, got %d", c.Jobs)
	}
	if c.Rate < 0 {
		return fmt.Errorf("-rate must be >= 0, got %v", c.Rate)
	}
	if c.Burst < 0 {
		return fmt.Errorf("-burst must be >= 0, got %d", c.Burst)
	}
	if c.ContribRate < 0 {
		return fmt.Errorf("-contrib-rate must be >= 0, got %v", c.ContribRate)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("cache size must be >= 0, got %d", c.CacheSize)
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return fmt.Errorf("-trace-sample must be in [0,1], got %v", c.TraceSample)
	}
	if c.LogSample < 0 || c.LogSample > 1 {
		return fmt.Errorf("-log-sample must be in [0,1], got %v", c.LogSample)
	}
	if c.Poll <= 0 {
		return fmt.Errorf("-poll must be > 0, got %v", c.Poll)
	}
	if c.Watch && len(c.Srcs) == 0 {
		return fmt.Errorf("-watch requires -src (the embedded corpus cannot change)")
	}
	for _, name := range c.Catalogs {
		if _, err := corpus.Catalog(name); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, name := range c.Catalogs {
		if seen[name] {
			return fmt.Errorf("duplicate corpus source name %q", name)
		}
		seen[name] = true
	}
	for _, s := range c.Srcs {
		name := s.Name
		if name == "" {
			name = corpus.DeriveName(s.Path)
		}
		if seen[name] {
			return fmt.Errorf("duplicate corpus source name %q", name)
		}
		seen[name] = true
	}
	if c.Follow != "" {
		u, err := url.Parse(c.Follow)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("-follow must be an http(s) base URL, got %q", c.Follow)
		}
		if c.Watch {
			return fmt.Errorf("-follow and -watch are exclusive (a follower never builds; the leader watches the corpus)")
		}
	}
	if c.FleetScrape != 0 && c.FleetScrape < time.Second {
		return fmt.Errorf("-fleet-scrape must be 0 or >= 1s, got %v", c.FleetScrape)
	}
	if c.ProfileCPU <= 0 {
		return fmt.Errorf("-profile-cpu must be > 0, got %v", c.ProfileCPU)
	}
	if c.Advertise != "" {
		u, err := url.Parse(c.Advertise)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("-advertise must be an http(s) base URL, got %q", c.Advertise)
		}
	}
	if _, err := obs.ParseLevel(c.LogLevel); err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	return nil
}

// CorpusSources resolves the configured adapters: named catalogs first,
// then directory sources, in flag order. An empty result makes the
// corpus loader fall back to the builtin curation.
func (c Config) CorpusSources() ([]corpus.Source, error) {
	var out []corpus.Source
	for _, name := range c.Catalogs {
		s, err := corpus.Catalog(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	for _, spec := range c.Srcs {
		out = append(out, corpus.Dir(spec.Name, spec.Path))
	}
	return out, nil
}

// SourcesSummary describes the configured corpus for logs and spans.
func (c Config) SourcesSummary() string {
	var parts []string
	parts = append(parts, c.Catalogs...)
	for _, s := range c.Srcs {
		name := s.Name
		if name == "" {
			name = corpus.DeriveName(s.Path)
		}
		parts = append(parts, name+"="+s.Path)
	}
	if len(parts) == 0 {
		return "builtin"
	}
	return strings.Join(parts, ",")
}

// SlogLevel resolves the effective log threshold (Verbose wins).
// Validate has already established that LogLevel parses.
func (c Config) SlogLevel() slog.Level {
	if c.Verbose {
		return slog.LevelDebug
	}
	lvl, err := obs.ParseLevel(c.LogLevel)
	if err != nil {
		return slog.LevelInfo
	}
	return lvl
}
