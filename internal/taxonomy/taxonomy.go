// Package taxonomy implements a Hugo-style taxonomy system: named
// classification axes (taxonomies) whose values (terms) are listed on content
// entries, with an inverted index that groups entries by term and renders
// term pages.
//
// PDCunplugged uses six taxonomies — cs2013, tcpp, courses, senses and the
// hidden cs2013details, tcppdetails and medium — declared in Section II-B of
// the paper. The engine itself is generic: any entry type that can report
// its terms may be indexed.
package taxonomy

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is anything classifiable by taxonomies. Terms returns the terms the
// entry lists for the given taxonomy name (nil when none).
type Entry interface {
	// Key uniquely identifies the entry (activity slug).
	Key() string
	// Terms returns the entry's terms for one taxonomy.
	Terms(taxonomy string) []string
}

// Weighted is optionally implemented by entries that rank themselves
// within a term page, mirroring Hugo's taxonomy weights: entries with
// higher weight list first on the term's page, ties falling back to key
// order.
type Weighted interface {
	Entry
	// TermWeight returns the entry's weight for a term of a taxonomy
	// (0 when unranked).
	TermWeight(taxonomy, term string) int
}

// Def declares one taxonomy axis.
type Def struct {
	// Name is the key used in front matter, e.g. "cs2013".
	Name string
	// Title is the human-readable name shown on pages, e.g. "CS2013".
	Title string
	// Hidden taxonomies classify entries but are not shown in page headers
	// (cs2013details, tcppdetails, medium in the paper).
	Hidden bool
	// Color is the badge color class used when rendering headers; each
	// taxonomy is assigned a different color (Section II-B).
	Color string
}

// Standard returns the six PDCunplugged taxonomies in display order.
func Standard() []Def {
	return []Def{
		{Name: "cs2013", Title: "CS2013", Color: "badge-cs2013"},
		{Name: "tcpp", Title: "TCPP", Color: "badge-tcpp"},
		{Name: "courses", Title: "Courses", Color: "badge-courses"},
		{Name: "senses", Title: "Senses", Color: "badge-senses"},
		{Name: "cs2013details", Title: "CS2013 Details", Hidden: true, Color: "badge-cs2013"},
		{Name: "tcppdetails", Title: "TCPP Details", Hidden: true, Color: "badge-tcpp"},
		{Name: "medium", Title: "Medium", Hidden: true, Color: "badge-medium"},
	}
}

// Index is the inverted term index for a set of entries across a set of
// taxonomy definitions. The zero value is not usable; call Build.
type Index struct {
	defs    []Def
	byName  map[string]Def
	entries map[string]Entry
	// terms[taxonomy][term] = sorted entry keys.
	terms map[string]map[string][]string
}

// Build indexes entries under the given taxonomy definitions. Entries with
// duplicate keys are rejected, as are unknown taxonomy defs referenced twice.
func Build(defs []Def, entries []Entry) (*Index, error) {
	ix := &Index{
		defs:    append([]Def(nil), defs...),
		byName:  make(map[string]Def, len(defs)),
		entries: make(map[string]Entry, len(entries)),
		terms:   make(map[string]map[string][]string, len(defs)),
	}
	for _, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("taxonomy: empty taxonomy name")
		}
		if _, dup := ix.byName[d.Name]; dup {
			return nil, fmt.Errorf("taxonomy: duplicate taxonomy %q", d.Name)
		}
		ix.byName[d.Name] = d
		ix.terms[d.Name] = make(map[string][]string)
	}
	for _, e := range entries {
		if err := ix.Add(e); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Add indexes one entry.
func (ix *Index) Add(e Entry) error {
	key := e.Key()
	if key == "" {
		return fmt.Errorf("taxonomy: entry with empty key")
	}
	if _, dup := ix.entries[key]; dup {
		return fmt.Errorf("taxonomy: duplicate entry key %q", key)
	}
	ix.entries[key] = e
	for _, d := range ix.defs {
		for _, term := range e.Terms(d.Name) {
			if term == "" {
				return fmt.Errorf("taxonomy: entry %q has empty %s term", key, d.Name)
			}
			ix.terms[d.Name][term] = insertSorted(ix.terms[d.Name][term], key)
		}
	}
	return nil
}

func insertSorted(keys []string, k string) []string {
	i := sort.SearchStrings(keys, k)
	if i < len(keys) && keys[i] == k {
		return keys
	}
	keys = append(keys, "")
	copy(keys[i+1:], keys[i:])
	keys[i] = k
	return keys
}

// Defs returns the taxonomy definitions in declaration order.
func (ix *Index) Defs() []Def { return append([]Def(nil), ix.defs...) }

// Def returns the definition for a taxonomy name.
func (ix *Index) Def(name string) (Def, bool) {
	d, ok := ix.byName[name]
	return d, ok
}

// Terms returns the sorted terms in use for a taxonomy.
func (ix *Index) Terms(taxonomy string) []string {
	m, ok := ix.terms[taxonomy]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// EntriesFor returns the sorted entry keys listing the given term.
func (ix *Index) EntriesFor(taxonomy, term string) []string {
	m, ok := ix.terms[taxonomy]
	if !ok {
		return nil
	}
	return append([]string(nil), m[term]...)
}

// Count returns the number of entries listing the term.
func (ix *Index) Count(taxonomy, term string) int {
	m, ok := ix.terms[taxonomy]
	if !ok {
		return 0
	}
	return len(m[term])
}

// Entry returns an indexed entry by key.
func (ix *Index) Entry(key string) (Entry, bool) {
	e, ok := ix.entries[key]
	return e, ok
}

// Keys returns all entry keys, sorted.
func (ix *Index) Keys() []string {
	out := make([]string, 0, len(ix.entries))
	for k := range ix.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int { return len(ix.entries) }

// WithAll returns the sorted keys of entries that list every given term of
// the taxonomy (intersection); an empty term list selects all entries.
func (ix *Index) WithAll(taxonomy string, terms ...string) []string {
	if len(terms) == 0 {
		return ix.Keys()
	}
	cur := ix.EntriesFor(taxonomy, terms[0])
	for _, t := range terms[1:] {
		cur = intersectSorted(cur, ix.EntriesFor(taxonomy, t))
	}
	return cur
}

// WithAny returns the sorted keys of entries listing at least one of the
// terms (union).
func (ix *Index) WithAny(taxonomy string, terms ...string) []string {
	var out []string
	for _, t := range terms {
		out = unionSorted(out, ix.EntriesFor(taxonomy, t))
	}
	return out
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func unionSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// TermPage describes one term's page: the term and its entry keys.
type TermPage struct {
	Taxonomy string
	Term     string
	Entries  []string
}

// Pages returns one TermPage per in-use term of the taxonomy, sorted by term.
func (ix *Index) Pages(taxonomy string) []TermPage {
	var pages []TermPage
	for _, t := range ix.Terms(taxonomy) {
		pages = append(pages, TermPage{Taxonomy: taxonomy, Term: t, Entries: ix.EntriesFor(taxonomy, t)})
	}
	return pages
}

// RankedEntries returns the term's entry keys ordered by descending weight
// for entries implementing Weighted (key order breaks ties and orders
// unweighted entries).
func (ix *Index) RankedEntries(taxonomy, term string) []string {
	keys := ix.EntriesFor(taxonomy, term)
	weight := func(key string) int {
		if w, ok := ix.entries[key].(Weighted); ok {
			return w.TermWeight(taxonomy, term)
		}
		return 0
	}
	sort.SliceStable(keys, func(i, j int) bool {
		wi, wj := weight(keys[i]), weight(keys[j])
		if wi != wj {
			return wi > wj
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Slug converts a term to a URL path segment the way Hugo does: lower-case,
// spaces and underscores to hyphens, other punctuation dropped.
func Slug(term string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(term) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '_' || r == '-':
			b.WriteRune('-')
		}
	}
	s := b.String()
	for strings.Contains(s, "--") {
		s = strings.ReplaceAll(s, "--", "-")
	}
	return strings.Trim(s, "-")
}
