package taxonomy_test

import (
	"fmt"

	"pdcunplugged/internal/taxonomy"
)

type card struct {
	key   string
	terms map[string][]string
}

func (c card) Key() string               { return c.key }
func (c card) Terms(tax string) []string { return c.terms[tax] }

// Example indexes two entries and queries a term page, the pattern behind
// every view on the site.
func Example() {
	ix, err := taxonomy.Build(
		[]taxonomy.Def{{Name: "courses", Title: "Courses"}},
		[]taxonomy.Entry{
			card{"findsmallestcard", map[string][]string{"courses": {"CS1", "CS2"}}},
			card{"oddeven", map[string][]string{"courses": {"CS1"}}},
		},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(ix.EntriesFor("courses", "CS1"))
	fmt.Println(ix.Count("courses", "CS2"))
	fmt.Println(taxonomy.Slug("PD_ParallelDecomposition"))
	// Output:
	// [findsmallestcard oddeven]
	// 1
	// pd-paralleldecomposition
}
