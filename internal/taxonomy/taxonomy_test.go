package taxonomy

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

type fakeEntry struct {
	key   string
	terms map[string][]string
}

func (f fakeEntry) Key() string               { return f.key }
func (f fakeEntry) Terms(tax string) []string { return f.terms[tax] }
func entry(key string, terms map[string][]string) Entry {
	return fakeEntry{key: key, terms: terms}
}

func defs() []Def {
	return []Def{{Name: "courses", Title: "Courses"}, {Name: "senses", Title: "Senses", Hidden: true}}
}

func TestBuildAndLookup(t *testing.T) {
	ix, err := Build(defs(), []Entry{
		entry("b", map[string][]string{"courses": {"CS1", "CS2"}, "senses": {"visual"}}),
		entry("a", map[string][]string{"courses": {"CS1"}}),
		entry("c", map[string][]string{"senses": {"touch", "visual"}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.EntriesFor("courses", "CS1"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("CS1 entries = %v", got)
	}
	if got := ix.Count("senses", "visual"); got != 2 {
		t.Errorf("visual count = %d", got)
	}
	if got := ix.Terms("courses"); !reflect.DeepEqual(got, []string{"CS1", "CS2"}) {
		t.Errorf("terms = %v", got)
	}
	if got := ix.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("keys = %v", got)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, ok := ix.Entry("b"); !ok {
		t.Error("Entry(b) not found")
	}
	if _, ok := ix.Entry("zzz"); ok {
		t.Error("Entry(zzz) found")
	}
	if got := ix.EntriesFor("nope", "x"); got != nil {
		t.Errorf("unknown taxonomy = %v", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]Def{{Name: ""}}, nil); err == nil {
		t.Error("empty taxonomy name accepted")
	}
	if _, err := Build([]Def{{Name: "x"}, {Name: "x"}}, nil); err == nil {
		t.Error("duplicate taxonomy accepted")
	}
	if _, err := Build(defs(), []Entry{entry("", nil)}); err == nil {
		t.Error("empty entry key accepted")
	}
	if _, err := Build(defs(), []Entry{entry("a", nil), entry("a", nil)}); err == nil {
		t.Error("duplicate entry key accepted")
	}
	if _, err := Build(defs(), []Entry{entry("a", map[string][]string{"courses": {""}})}); err == nil {
		t.Error("empty term accepted")
	}
}

func TestWithAllWithAny(t *testing.T) {
	ix, err := Build(defs(), []Entry{
		entry("a", map[string][]string{"courses": {"CS1", "CS2"}}),
		entry("b", map[string][]string{"courses": {"CS2", "DSA"}}),
		entry("c", map[string][]string{"courses": {"CS1", "DSA"}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.WithAll("courses", "CS1", "CS2"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("WithAll = %v", got)
	}
	if got := ix.WithAny("courses", "CS1", "DSA"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("WithAny = %v", got)
	}
	if got := ix.WithAll("courses"); len(got) != 3 {
		t.Errorf("WithAll() = %v", got)
	}
	if got := ix.WithAny("courses", "none"); len(got) != 0 {
		t.Errorf("WithAny(none) = %v", got)
	}
}

func TestPages(t *testing.T) {
	ix, err := Build(defs(), []Entry{
		entry("a", map[string][]string{"senses": {"visual"}}),
		entry("b", map[string][]string{"senses": {"touch", "visual"}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	pages := ix.Pages("senses")
	if len(pages) != 2 {
		t.Fatalf("pages = %+v", pages)
	}
	if pages[0].Term != "touch" || !reflect.DeepEqual(pages[0].Entries, []string{"b"}) {
		t.Errorf("page 0 = %+v", pages[0])
	}
	if pages[1].Term != "visual" || !reflect.DeepEqual(pages[1].Entries, []string{"a", "b"}) {
		t.Errorf("page 1 = %+v", pages[1])
	}
}

func TestStandardTaxonomies(t *testing.T) {
	std := Standard()
	if len(std) != 7 {
		t.Fatalf("expected 7 standard taxonomies, got %d", len(std))
	}
	visible, hidden := 0, 0
	names := map[string]bool{}
	for _, d := range std {
		names[d.Name] = true
		if d.Hidden {
			hidden++
		} else {
			visible++
		}
	}
	if visible != 4 || hidden != 3 {
		t.Errorf("visible=%d hidden=%d, paper specifies 4 visible + 3 hidden", visible, hidden)
	}
	for _, want := range []string{"cs2013", "tcpp", "courses", "senses", "cs2013details", "tcppdetails", "medium"} {
		if !names[want] {
			t.Errorf("missing standard taxonomy %q", want)
		}
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"PD_ParallelDecomposition": "pd-paralleldecomposition",
		"TCPP_Algorithms":          "tcpp-algorithms",
		"K_12":                     "k-12",
		"C_Speedup":                "c-speedup",
		"role-play":                "role-play",
		"  odd  ":                  "odd",
		"Weird!@#Term":             "weirdterm",
		"a__b":                     "a-b",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: the index is an exact inverse of entry term listings.
func TestIndexInverseProperty(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		taxNames := []string{"courses", "senses"}
		termPool := []string{"CS1", "CS2", "DSA", "visual", "touch"}
		var entries []Entry
		want := map[string]map[string]map[string]bool{} // tax -> term -> key
		for i, r := range raw {
			if i >= 12 {
				break
			}
			key := string(rune('a' + i))
			terms := map[string][]string{}
			for axis := 0; axis < 2; axis++ {
				tax := taxNames[axis]
				seen := map[string]bool{}
				for bit := 0; bit < len(termPool); bit++ {
					if r[axis]&(1<<uint(bit)) != 0 {
						term := termPool[bit]
						if seen[term] {
							continue
						}
						seen[term] = true
						terms[tax] = append(terms[tax], term)
						if want[tax] == nil {
							want[tax] = map[string]map[string]bool{}
						}
						if want[tax][term] == nil {
							want[tax][term] = map[string]bool{}
						}
						want[tax][term][key] = true
					}
				}
			}
			entries = append(entries, entry(key, terms))
		}
		ix, err := Build(defs(), entries)
		if err != nil {
			return false
		}
		for tax, terms := range want {
			for term, keys := range terms {
				got := ix.EntriesFor(tax, term)
				var wantKeys []string
				for k := range keys {
					wantKeys = append(wantKeys, k)
				}
				sort.Strings(wantKeys)
				if !reflect.DeepEqual(got, wantKeys) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

type weightedEntry struct {
	fakeEntry
	weights map[string]int // "tax/term" -> weight
}

func (w weightedEntry) TermWeight(tax, term string) int { return w.weights[tax+"/"+term] }

func TestRankedEntries(t *testing.T) {
	ix, err := Build(defs(), []Entry{
		weightedEntry{fakeEntry{key: "low", terms: map[string][]string{"courses": {"CS1"}}}, map[string]int{"courses/CS1": 1}},
		weightedEntry{fakeEntry{key: "high", terms: map[string][]string{"courses": {"CS1"}}}, map[string]int{"courses/CS1": 9}},
		entry("plain", map[string][]string{"courses": {"CS1"}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := ix.RankedEntries("courses", "CS1")
	if !reflect.DeepEqual(got, []string{"high", "low", "plain"}) {
		t.Errorf("RankedEntries = %v", got)
	}
	// EntriesFor stays alphabetical.
	if got := ix.EntriesFor("courses", "CS1"); !reflect.DeepEqual(got, []string{"high", "low", "plain"}) {
		t.Errorf("EntriesFor = %v", got)
	}
	// Unweighted taxonomy falls back to key order.
	ix2, err := Build(defs(), []Entry{
		entry("b", map[string][]string{"senses": {"visual"}}),
		entry("a", map[string][]string{"senses": {"visual"}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix2.RankedEntries("senses", "visual"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("unweighted ranking = %v", got)
	}
}

func TestSetOpsProperties(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(xs []uint8) []string {
			set := map[string]bool{}
			for _, x := range xs {
				set[string(rune('a'+int(x%20)))] = true
			}
			var out []string
			for k := range set {
				out = append(out, k)
			}
			sort.Strings(out)
			return out
		}
		sa, sb := mk(a), mk(b)
		inter := intersectSorted(sa, sb)
		uni := unionSorted(sa, sb)
		// |A∪B| + |A∩B| = |A| + |B|
		if len(uni)+len(inter) != len(sa)+len(sb) {
			return false
		}
		if !sort.StringsAreSorted(inter) || !sort.StringsAreSorted(uni) {
			return false
		}
		for _, x := range inter {
			i := sort.SearchStrings(sa, x)
			j := sort.SearchStrings(sb, x)
			if i >= len(sa) || sa[i] != x || j >= len(sb) || sb[j] != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
