// Package cs2013 models the Parallel and Distributed Computing (PD)
// knowledge area of the ACM/IEEE Computer Science Curricula 2013, the first
// of the two curricular frameworks PDCunplugged maps activities onto.
//
// The knowledge area contains nine knowledge units. Each knowledge unit
// carries a list of learning outcomes; Table I of the paper reports, per
// unit, the number of outcomes, how many are covered by at least one
// unplugged activity, and the number of activities tagged with the unit.
//
// Taxonomy terms follow the paper's conventions (Section II-B): an activity
// lists knowledge units under the cs2013 taxonomy as PD_<UnitName> terms
// (e.g. PD_ParallelDecomposition) and individual learning outcomes under the
// hidden cs2013details taxonomy as <Abbrev>_<n> terms (e.g. PD_3).
package cs2013

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tier classifies a learning outcome per CS2013: every program must cover
// all Tier-1 outcomes, at least 80% of Tier-2 outcomes, and a significant
// amount of elective material.
type Tier int

// Tier values.
const (
	Tier1 Tier = iota + 1
	Tier2
	Elective
)

// String returns the CS2013 name of the tier.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "Tier1"
	case Tier2:
		return "Tier2"
	case Elective:
		return "Elective"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Outcome is one learning outcome within a knowledge unit.
type Outcome struct {
	// Num is the 1-based position within the unit; the cs2013details term
	// for outcome n of unit with abbreviation AB is "AB_n".
	Num  int
	Text string
	Tier Tier
}

// Unit is one CS2013 PD knowledge unit.
type Unit struct {
	// Abbrev is the short code used in cs2013details terms (e.g. "PD").
	Abbrev string
	// Name is the full unit name as printed in Table I.
	Name string
	// Term is the cs2013 taxonomy term (e.g. "PD_ParallelDecomposition").
	Term string
	// Elective marks purely elective units (marked E in Table I).
	Elective bool
	Outcomes []Outcome
}

// OutcomeTerm returns the cs2013details term for outcome n of the unit.
func (u Unit) OutcomeTerm(n int) string {
	return fmt.Sprintf("%s_%d", u.Abbrev, n)
}

// NumOutcomes returns the number of learning outcomes in the unit.
func (u Unit) NumOutcomes() int { return len(u.Outcomes) }

// units is the PD knowledge area. Outcome texts are condensed from CS2013
// §PD; outcome counts per unit match Table I of the paper exactly
// (3, 6, 12, 11, 8, 7, 9, 5, 6).
var units = []Unit{
	{
		Abbrev: "PF", Name: "Parallelism Fundamentals", Term: "PD_ParallelismFundamentals",
		Outcomes: []Outcome{
			{1, "Distinguish using computational resources for a faster answer from managing efficient access to a shared resource", Tier1},
			{2, "Distinguish multiple sufficient programming constructs for synchronization that may be inter-implementable but have complementary advantages", Tier1},
			{3, "Distinguish data races from higher-level races", Tier1},
		},
	},
	{
		Abbrev: "PD", Name: "Parallel Decomposition", Term: "PD_ParallelDecomposition",
		Outcomes: []Outcome{
			{1, "Explain why synchronization is necessary in a specific parallel program", Tier1},
			{2, "Identify opportunities to partition a serial program into independent parallel modules", Tier1},
			{3, "Write a correct and scalable parallel algorithm", Tier2},
			{4, "Parallelize an algorithm by applying task-based decomposition", Tier2},
			{5, "Parallelize an algorithm by applying data-parallel decomposition", Tier2},
			{6, "Write a program using actors and/or reactive processes", Tier2},
		},
	},
	{
		Abbrev: "PCC", Name: "Parallel Communication and Coordination", Term: "PD_CommunicationAndCoordination",
		Outcomes: []Outcome{
			{1, "Use mutual exclusion to avoid a given race condition", Tier1},
			{2, "Give an example of an ordering of accesses among concurrent activities that is not sequentially consistent", Tier2},
			{3, "Give an example of a scenario in which blocking message sends can deadlock", Tier2},
			{4, "Explain when and why multicast or event-based messaging can be preferable to alternatives", Tier2},
			{5, "Write a program that correctly terminates when all of a set of concurrent tasks have completed", Tier2},
			{6, "Give an example of a scenario in which an attempted optimistic update may never complete", Tier2},
			{7, "Use semaphores or condition variables to block threads until a necessary precondition holds", Tier2},
			{8, "Understand the notion of a consensus algorithm and why it matters in distributed settings", Elective},
			{9, "Explain why producer-consumer relationships require coordinated buffering", Elective},
			{10, "Transform a program with barriers into an equivalent program using finer-grained synchronization", Elective},
			{11, "Illustrate the underlying message exchange of a remote procedure call", Elective},
			{12, "Describe how callbacks and futures decouple request from response", Elective},
		},
	},
	{
		Abbrev: "PAAP", Name: "Parallel Algorithms, Analysis, and Programming", Term: "PD_ParallelAlgorithms",
		Outcomes: []Outcome{
			{1, "Define 'critical path', 'work', and 'span'", Tier1},
			{2, "Compute the work and span, and determine the critical path with respect to a parallel execution diagram", Tier1},
			{3, "Define 'speed-up' and explain the notion of an algorithm's scalability in this regard", Tier1},
			{4, "Identify independent tasks in a program that may be parallelized", Tier1},
			{5, "Characterize features of a workload that allow or prevent it from being naturally parallelized", Tier1},
			{6, "Implement a parallel divide-and-conquer or graph algorithm and empirically measure its performance relative to its sequential analog", Tier2},
			{7, "Decompose a problem via map and reduce operations", Tier2},
			{8, "Provide an example of a problem that fits the producer-consumer paradigm", Elective},
			{9, "Give examples of problems where pipelining would be an effective means of parallelization", Elective},
			{10, "Implement a parallel matrix algorithm", Elective},
			{11, "Identify issues that arise in producer-consumer algorithms and mechanisms that may be used for addressing them", Elective},
		},
	},
	{
		Abbrev: "PA", Name: "Parallel Architecture", Term: "PD_ParallelArchitecture",
		Outcomes: []Outcome{
			{1, "Explain the differences between shared and distributed memory", Tier1},
			{2, "Describe the SMP architecture and note its key features", Tier2},
			{3, "Characterize the kinds of tasks that are a natural match for SIMD machines", Tier2},
			{4, "Describe the advantages and limitations of GPUs vs. CPUs", Elective},
			{5, "Explain the features of each classification in Flynn's taxonomy", Elective},
			{6, "Describe basic challenges of memory hierarchy in multiprocessors, including cache coherence", Elective},
			{7, "Describe the challenges of maintaining a consistent view of memory across processors", Elective},
			{8, "Describe how interconnection topology affects communication cost", Elective},
		},
	},
	{
		Abbrev: "PP", Name: "Parallel Performance", Term: "PD_ParallelPerformance", Elective: true,
		Outcomes: []Outcome{
			{1, "Detect and correct a load imbalance", Elective},
			{2, "Calculate the implications of Amdahl's law for a particular parallel algorithm", Elective},
			{3, "Describe how data distribution affects communication cost", Elective},
			{4, "Detect and correct an instance of false sharing", Elective},
			{5, "Explain the impact of scheduling on parallel performance", Elective},
			{6, "Explain performance impacts of data locality", Elective},
			{7, "Explain the impact and trade-off related to power usage on parallel performance", Elective},
		},
	},
	{
		Abbrev: "DS", Name: "Distributed Systems", Term: "PD_DistributedSystems", Elective: true,
		Outcomes: []Outcome{
			{1, "Distinguish network faults from other kinds of failures", Elective},
			{2, "Explain why synchronization constructs such as simple locks are not useful in the presence of distributed faults", Elective},
			{3, "Write a program that performs any required marshaling and conversion into message units to transfer data", Elective},
			{4, "Measure the observed throughput and response latency across hosts in a given network", Elective},
			{5, "Explain why no distributed system can be simultaneously consistent, available, and partition tolerant", Elective},
			{6, "Implement a simple server and client that interact via messages", Elective},
			{7, "Explain the tradeoffs among overhead, scalability, and fault tolerance when choosing a stateful or stateless design", Elective},
			{8, "Describe the scalability challenges associated with a service growing to accommodate many clients", Elective},
			{9, "Give examples of problems for which consensus algorithms such as leader election are required", Elective},
		},
	},
	{
		Abbrev: "CC", Name: "Cloud Computing", Term: "PD_CloudComputing", Elective: true,
		Outcomes: []Outcome{
			{1, "Discuss the importance of elasticity and resource management in cloud computing", Elective},
			{2, "Explain strategies to synchronize a common view of shared data across a collection of devices", Elective},
			{3, "Explain the advantages and disadvantages of using virtualized infrastructure", Elective},
			{4, "Deploy an application that uses cloud infrastructure for computing or data resources", Elective},
			{5, "Appropriately partition an application between a client and resources in the cloud", Elective},
		},
	},
	{
		Abbrev: "FMS", Name: "Formal Models and Semantics", Term: "PD_FormalModels", Elective: true,
		Outcomes: []Outcome{
			{1, "Model a concurrent process using a formal model such as a process algebra", Elective},
			{2, "Explain the difference between safety and liveness properties", Elective},
			{3, "Use a model checker or invariant-based reasoning to verify a concurrent program", Elective},
			{4, "Describe the behavior of a non-deterministic program as a set of possible executions", Elective},
			{5, "Explain what it means for a concurrent algorithm to be correct for all interleavings", Elective},
			{6, "Express the correctness of a distributed algorithm with an invariant over global states", Elective},
		},
	},
}

// All returns the nine PD knowledge units in Table I order.
func All() []Unit { return append([]Unit(nil), units...) }

// ByTerm returns the unit with the given cs2013 taxonomy term.
func ByTerm(term string) (Unit, bool) {
	for _, u := range units {
		if u.Term == term {
			return u, true
		}
	}
	return Unit{}, false
}

// ByAbbrev returns the unit with the given abbreviation.
func ByAbbrev(ab string) (Unit, bool) {
	for _, u := range units {
		if u.Abbrev == ab {
			return u, true
		}
	}
	return Unit{}, false
}

// Terms returns all cs2013 taxonomy terms, sorted.
func Terms() []string {
	out := make([]string, len(units))
	for i, u := range units {
		out[i] = u.Term
	}
	sort.Strings(out)
	return out
}

// ParseDetail splits a cs2013details term such as "PD_3" into its unit and
// outcome. It rejects unknown units and out-of-range outcome numbers.
func ParseDetail(term string) (Unit, Outcome, error) {
	i := strings.LastIndex(term, "_")
	if i <= 0 || i == len(term)-1 {
		return Unit{}, Outcome{}, fmt.Errorf("cs2013: malformed detail term %q", term)
	}
	u, ok := ByAbbrev(term[:i])
	if !ok {
		return Unit{}, Outcome{}, fmt.Errorf("cs2013: unknown knowledge unit in term %q", term)
	}
	n, err := strconv.Atoi(term[i+1:])
	if err != nil {
		return Unit{}, Outcome{}, fmt.Errorf("cs2013: bad outcome number in term %q", term)
	}
	if n < 1 || n > len(u.Outcomes) {
		return Unit{}, Outcome{}, fmt.Errorf("cs2013: outcome %d out of range for %s (1..%d)", n, u.Abbrev, len(u.Outcomes))
	}
	return u, u.Outcomes[n-1], nil
}

// TotalOutcomes returns the total number of learning outcomes across the
// knowledge area.
func TotalOutcomes() int {
	n := 0
	for _, u := range units {
		n += len(u.Outcomes)
	}
	return n
}
