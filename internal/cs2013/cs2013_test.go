package cs2013

import (
	"testing"
	"testing/quick"
)

// Outcome counts per knowledge unit as printed in Table I of the paper.
var tableICounts = map[string]int{
	"Parallelism Fundamentals":                       3,
	"Parallel Decomposition":                         6,
	"Parallel Communication and Coordination":        12,
	"Parallel Algorithms, Analysis, and Programming": 11,
	"Parallel Architecture":                          8,
	"Parallel Performance":                           7,
	"Distributed Systems":                            9,
	"Cloud Computing":                                5,
	"Formal Models and Semantics":                    6,
}

func TestUnitCountsMatchTableI(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("knowledge units = %d, want 9", len(all))
	}
	for _, u := range all {
		want, ok := tableICounts[u.Name]
		if !ok {
			t.Errorf("unexpected unit %q", u.Name)
			continue
		}
		if got := u.NumOutcomes(); got != want {
			t.Errorf("%s: %d outcomes, Table I says %d", u.Name, got, want)
		}
	}
	if got := TotalOutcomes(); got != 3+6+12+11+8+7+9+5+6 {
		t.Errorf("TotalOutcomes = %d", got)
	}
}

func TestElectiveUnits(t *testing.T) {
	// Table I marks Parallel Performance, Distributed Systems, Cloud
	// Computing and Formal Models and Semantics as purely elective (E).
	wantElective := map[string]bool{
		"Parallel Performance":        true,
		"Distributed Systems":         true,
		"Cloud Computing":             true,
		"Formal Models and Semantics": true,
	}
	for _, u := range All() {
		if u.Elective != wantElective[u.Name] {
			t.Errorf("%s: elective = %v, want %v", u.Name, u.Elective, wantElective[u.Name])
		}
	}
}

func TestOutcomeNumbering(t *testing.T) {
	for _, u := range All() {
		for i, o := range u.Outcomes {
			if o.Num != i+1 {
				t.Errorf("%s outcome %d numbered %d", u.Abbrev, i+1, o.Num)
			}
			if o.Text == "" {
				t.Errorf("%s_%d has empty text", u.Abbrev, o.Num)
			}
			if o.Tier < Tier1 || o.Tier > Elective {
				t.Errorf("%s_%d has invalid tier %v", u.Abbrev, o.Num, o.Tier)
			}
		}
	}
}

func TestUniqueIdentifiers(t *testing.T) {
	abbrevs, terms := map[string]bool{}, map[string]bool{}
	for _, u := range All() {
		if abbrevs[u.Abbrev] {
			t.Errorf("duplicate abbrev %q", u.Abbrev)
		}
		abbrevs[u.Abbrev] = true
		if terms[u.Term] {
			t.Errorf("duplicate term %q", u.Term)
		}
		terms[u.Term] = true
	}
}

func TestLookups(t *testing.T) {
	u, ok := ByTerm("PD_ParallelDecomposition")
	if !ok || u.Abbrev != "PD" {
		t.Fatalf("ByTerm failed: %+v %v", u, ok)
	}
	if _, ok := ByTerm("PD_Nothing"); ok {
		t.Error("ByTerm accepted unknown term")
	}
	u, ok = ByAbbrev("FMS")
	if !ok || u.Name != "Formal Models and Semantics" {
		t.Fatalf("ByAbbrev failed: %+v %v", u, ok)
	}
	if _, ok := ByAbbrev("XX"); ok {
		t.Error("ByAbbrev accepted unknown abbrev")
	}
	if got := len(Terms()); got != 9 {
		t.Errorf("Terms() = %d", got)
	}
}

func TestOutcomeTerm(t *testing.T) {
	u, _ := ByAbbrev("PD")
	if got := u.OutcomeTerm(3); got != "PD_3" {
		t.Errorf("OutcomeTerm = %q", got)
	}
}

func TestParseDetail(t *testing.T) {
	u, o, err := ParseDetail("PD_3")
	if err != nil {
		t.Fatal(err)
	}
	if u.Abbrev != "PD" || o.Num != 3 {
		t.Errorf("ParseDetail(PD_3) = %s %d", u.Abbrev, o.Num)
	}
	if _, _, err := ParseDetail("PCC_12"); err != nil {
		t.Errorf("PCC_12 should parse: %v", err)
	}
	for _, bad := range []string{"PD_0", "PD_7", "XX_1", "PD", "_1", "PD_", "PD_x"} {
		if _, _, err := ParseDetail(bad); err == nil {
			t.Errorf("ParseDetail(%q) should fail", bad)
		}
	}
}

func TestParseDetailRoundTripProperty(t *testing.T) {
	unitsAll := All()
	f := func(ui, oi uint8) bool {
		u := unitsAll[int(ui)%len(unitsAll)]
		n := int(oi)%len(u.Outcomes) + 1
		gotU, gotO, err := ParseDetail(u.OutcomeTerm(n))
		return err == nil && gotU.Abbrev == u.Abbrev && gotO.Num == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTierString(t *testing.T) {
	if Tier1.String() != "Tier1" || Tier2.String() != "Tier2" || Elective.String() != "Elective" {
		t.Error("Tier.String mismatch")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Errorf("invalid tier string: %s", Tier(9))
	}
}

func TestParallelFundamentalsDistinguishOutcomes(t *testing.T) {
	// Section III-B observes that all PF outcomes ask students to
	// distinguish competing concepts, which explains the unit's sparse
	// coverage; the model should preserve this.
	u, _ := ByAbbrev("PF")
	for _, o := range u.Outcomes {
		if len(o.Text) < 11 || o.Text[:11] != "Distinguish" {
			t.Errorf("PF_%d does not start with Distinguish: %q", o.Num, o.Text)
		}
	}
}
