package bib

import (
	"sort"

	"pdcunplugged/internal/activity"
)

// Link ties one activity to one resolved reference.
type Link struct {
	Slug string
	Ref  Reference
}

// Graph is the citation graph over a set of activities: which activity
// cites which source, and which activities share a source. During
// curation, shared sources are how descriptions scattered across papers
// were collapsed into "variations of a single activity" (Section III).
type Graph struct {
	// BySlug maps activity slug -> resolved reference keys (sorted).
	BySlug map[string][]string
	// ByRef maps reference key -> activity slugs citing it (sorted).
	ByRef map[string][]string
	// Unresolved holds citation strings no bibliography entry matched.
	Unresolved []string
}

// BuildGraph resolves every citation of every activity.
func BuildGraph(acts []*activity.Activity) *Graph {
	g := &Graph{BySlug: map[string][]string{}, ByRef: map[string][]string{}}
	for _, a := range acts {
		seen := map[string]bool{}
		for _, c := range a.Citations {
			ref, ok := Resolve(c)
			if !ok {
				g.Unresolved = append(g.Unresolved, a.Slug+": "+c)
				continue
			}
			if seen[ref.Key] {
				continue
			}
			seen[ref.Key] = true
			g.BySlug[a.Slug] = append(g.BySlug[a.Slug], ref.Key)
			g.ByRef[ref.Key] = append(g.ByRef[ref.Key], a.Slug)
		}
	}
	for _, keys := range g.BySlug {
		sort.Strings(keys)
	}
	for _, slugs := range g.ByRef {
		sort.Strings(slugs)
	}
	sort.Strings(g.Unresolved)
	return g
}

// SharedSources returns the reference keys cited by two or more
// activities, with the activities that share them: the variation clusters.
func (g *Graph) SharedSources() []Link {
	var out []Link
	keys := make([]string, 0, len(g.ByRef))
	for k := range g.ByRef {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		slugs := g.ByRef[k]
		if len(slugs) < 2 {
			continue
		}
		ref, _ := ByKey(k)
		for _, slug := range slugs {
			out = append(out, Link{Slug: slug, Ref: ref})
		}
	}
	return out
}

// Bibliography returns the distinct references the activities cite, in
// year order.
func (g *Graph) Bibliography() []Reference {
	var out []Reference
	for k := range g.ByRef {
		if r, ok := ByKey(k); ok {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return out[i].Key < out[j].Key
	})
	return out
}
