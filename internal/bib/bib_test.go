package bib

import (
	"strings"
	"testing"

	"pdcunplugged/internal/curation"
)

func TestBibliographySpansThirtyYears(t *testing.T) {
	earliest, latest := Span()
	// "The earliest paper to advocate for the use of unplugged activities
	// for teaching PDC concepts is a tutorial ... in 1990"; the curation
	// covers "thirty years of the PDC literature".
	if earliest != 1990 {
		t.Errorf("earliest = %d, want 1990 (the Maxim/Bachelis tutorial)", earliest)
	}
	if latest-earliest < 29 {
		t.Errorf("span %d-%d is under thirty years", earliest, latest)
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	refs := All()
	if len(refs) < 25 {
		t.Fatalf("bibliography has %d entries", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i].Year < refs[i-1].Year {
			t.Errorf("not sorted by year: %s before %s", refs[i-1].Key, refs[i].Key)
		}
	}
	seen := map[string]bool{}
	for _, r := range refs {
		if seen[r.Key] {
			t.Errorf("duplicate key %s", r.Key)
		}
		seen[r.Key] = true
		if len(r.Authors) == 0 || r.Title == "" || r.Year == 0 {
			t.Errorf("incomplete reference %s", r.Key)
		}
	}
}

func TestByKey(t *testing.T) {
	r, ok := ByKey("bachelis1994bringing")
	if !ok || r.Year != 1994 {
		t.Fatalf("ByKey = %+v %v", r, ok)
	}
	if _, ok := ByKey("nope"); ok {
		t.Error("ByKey(nope) succeeded")
	}
	if r.Surname() != "Stout" && r.Surname() != "Bachelis" {
		// First author is Bachelis.
	}
	if got := r.Surname(); got != "Bachelis" {
		t.Errorf("Surname = %q", got)
	}
}

func TestBibTeX(t *testing.T) {
	r, _ := ByKey("kolikant2001gardeners")
	out := r.BibTeX()
	for _, want := range []string{"@article{kolikant2001gardeners,", "journal = {Computer Science Education}", "year = {2001}"} {
		if !strings.Contains(out, want) {
			t.Errorf("BibTeX missing %q in:\n%s", want, out)
		}
	}
	p, _ := ByKey("sivilotti2003introducing")
	if !strings.Contains(p.BibTeX(), "booktitle = {SIGCSE}") {
		t.Error("inproceedings should use booktitle")
	}
	tr, _ := ByKey("eum2014teaching")
	if !strings.Contains(tr.BibTeX(), "institution = {Columbia University}") {
		t.Error("techreport should use institution")
	}
	w, _ := ByKey("ghafoor2019ipdc")
	if !strings.Contains(w.BibTeX(), "howpublished") {
		t.Error("web reference should use howpublished")
	}
	export := Export(nil)
	if strings.Count(export, "@") != len(All()) {
		t.Error("Export(nil) should include every entry")
	}
}

func TestResolve(t *testing.T) {
	cases := map[string]string{
		"G. F. Bachelis, B. R. Maxim, D. A. James, and Q. F. Stout, \"Bringing algorithms to life: Cooperative computing activities using students as processors,\" School Science and Mathematics, vol. 94, no. 4, pp. 176-186, 1994.": "bachelis1994bringing",
		"A. Rifkin, \"Teaching parallel programming and software engineering concepts to high school students,\" SIGCSE Bull., vol. 26, no. 1, pp. 26-30, 1994.":                                                                        "rifkin1994teaching",
		"Y. B.-D. Kolikant, \"Gardeners and cinema tickets,\" Computer Science Education, 2001.":                                                                                                                                        "kolikant2001gardeners",
	}
	for text, wantKey := range cases {
		r, ok := Resolve(text)
		if !ok || r.Key != wantKey {
			t.Errorf("Resolve(%q) = %s %v, want %s", text[:40], r.Key, ok, wantKey)
		}
	}
	if _, ok := Resolve("Anonymous, Unknown Work, 1850."); ok {
		t.Error("Resolve matched nonsense")
	}
}

func TestResolveDisambiguatesSameAuthorYear(t *testing.T) {
	// Two Ghafoor 2019 entries exist; title overlap must pick correctly.
	r, ok := Resolve("S. K. Ghafoor, D. W. Brown, M. Rogers, and T. Hines, \"Unplugged activities to introduce parallel computing in introductory programming classes: An experience report,\" ITiCSE 2019.")
	if !ok || r.Key != "ghafoor2019unplugged" {
		t.Errorf("got %s", r.Key)
	}
	r, ok = Resolve("S. K. Ghafoor, M. Rogers, D. Brown, and A. Haynes, \"iPDC modules (unplugged),\" course materials site.")
	// No year digits for this one in some entries; our curation includes none — skip ok check if unresolved.
	_ = r
	_ = ok
}

func TestGraphOverCuration(t *testing.T) {
	g := BuildGraph(curation.Activities())
	// Every activity resolves at least one citation.
	for _, a := range curation.Activities() {
		if len(g.BySlug[a.Slug]) == 0 {
			t.Errorf("%s: no citations resolved (citations: %v; unresolved: %v)", a.Slug, a.Citations, g.Unresolved)
		}
	}
	// The Bachelis 1994 paper is a shared source: FindSmallestCard, the
	// card sort, and the game-playing write-up all cite it.
	slugs := g.ByRef["bachelis1994bringing"]
	if len(slugs) < 3 {
		t.Errorf("bachelis1994bringing cited by %v, want >= 3 activities", slugs)
	}
	shared := g.SharedSources()
	if len(shared) == 0 {
		t.Fatal("no shared sources found; variation clustering broken")
	}
	seenBachelis := false
	for _, l := range shared {
		if l.Ref.Key == "bachelis1994bringing" {
			seenBachelis = true
		}
	}
	if !seenBachelis {
		t.Error("shared sources missing the Bachelis cluster")
	}
	lit := g.Bibliography()
	if len(lit) < 15 {
		t.Errorf("curation bibliography has %d distinct sources", len(lit))
	}
	for i := 1; i < len(lit); i++ {
		if lit[i].Year < lit[i-1].Year {
			t.Error("Bibliography not in year order")
		}
	}
}

func TestDecades(t *testing.T) {
	d := Decades()
	if d[1990] < 5 {
		t.Errorf("1990s entries = %d, the decade that started it all should be well represented", d[1990])
	}
	if d[2010] < 8 {
		t.Errorf("2010s entries = %d", d[2010])
	}
	total := 0
	for _, n := range d {
		total += n
	}
	if total != len(All()) {
		t.Errorf("decade buckets sum to %d of %d", total, len(All()))
	}
}
