// Package bib is the citation database behind the curation: structured
// references for every source the curated activities cite, free-text
// citation resolution, BibTeX export, and the citation graph that groups
// activities sharing a source (how the paper identified "variations" of a
// single activity during curation).
package bib

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a reference.
type Kind string

// Reference kinds.
const (
	Article       Kind = "article"
	InProceedings Kind = "inproceedings"
	TechReport    Kind = "techreport"
	Web           Kind = "misc"
)

// Reference is one bibliography entry.
type Reference struct {
	// Key is the citation key, e.g. "bachelis1994bringing".
	Key string
	// Authors are "Given Surname" strings in order.
	Authors []string
	Title   string
	// Venue is the journal/proceedings/institution.
	Venue string
	Year  int
	Kind  Kind
	URL   string
}

// Surname returns the first author's surname (last word of the name).
func (r Reference) Surname() string {
	if len(r.Authors) == 0 {
		return ""
	}
	fields := strings.Fields(r.Authors[0])
	return fields[len(fields)-1]
}

// BibTeX renders the reference as a BibTeX entry.
func (r Reference) BibTeX() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%s{%s,\n", r.Kind, r.Key)
	fmt.Fprintf(&b, "  author = {%s},\n", strings.Join(r.Authors, " and "))
	fmt.Fprintf(&b, "  title = {%s},\n", r.Title)
	switch r.Kind {
	case Article:
		fmt.Fprintf(&b, "  journal = {%s},\n", r.Venue)
	case InProceedings:
		fmt.Fprintf(&b, "  booktitle = {%s},\n", r.Venue)
	case TechReport:
		fmt.Fprintf(&b, "  institution = {%s},\n", r.Venue)
	default:
		if r.Venue != "" {
			fmt.Fprintf(&b, "  howpublished = {%s},\n", r.Venue)
		}
	}
	fmt.Fprintf(&b, "  year = {%d},\n", r.Year)
	if r.URL != "" {
		fmt.Fprintf(&b, "  url = {%s},\n", r.URL)
	}
	b.WriteString("}\n")
	return b.String()
}

// references is every source the curated activities cite, from the paper's
// own bibliography.
var references = []Reference{
	{Key: "maxim1990introducing", Authors: []string{"Bruce R. Maxim", "Gilbert Bachelis", "David James", "Quentin Stout"},
		Title: "Introducing parallel algorithms in undergraduate computer science courses (tutorial session)",
		Venue: "SIGCSE", Year: 1990, Kind: InProceedings},
	{Key: "kitchen1992game", Authors: []string{"Andrew T. Kitchen", "Nan C. Schaller", "Paul T. Tymann"},
		Title: "Game playing as a technique for teaching parallel computing concepts",
		Venue: "SIGCSE Bulletin", Year: 1992, Kind: Article},
	{Key: "bachelis1994bringing", Authors: []string{"Gilbert F. Bachelis", "Bruce R. Maxim", "David A. James", "Quentin F. Stout"},
		Title: "Bringing algorithms to life: Cooperative computing activities using students as processors",
		Venue: "School Science and Mathematics", Year: 1994, Kind: Article},
	{Key: "rifkin1994teaching", Authors: []string{"Adam Rifkin"},
		Title: "Teaching parallel programming and software engineering concepts to high school students",
		Venue: "SIGCSE Bulletin", Year: 1994, Kind: Article},
	{Key: "lloyd1994byzantine", Authors: []string{"William S. Lloyd"},
		Title: "Exploring the byzantine generals problem with beginning computer science students",
		Venue: "SIGCSE Bulletin", Year: 1994, Kind: Article},
	{Key: "fleury1997acting", Authors: []string{"Ann Fleury"},
		Title: "Acting out algorithms: how and why it works",
		Venue: "The Journal of Computing in Small Colleges", Year: 1997, Kind: Article},
	{Key: "benari1999thinking", Authors: []string{"Mordechai Ben-Ari", "Yifat B.-D. Kolikant"},
		Title: "Thinking parallel: The process of learning concurrency",
		Venue: "ITiCSE", Year: 1999, Kind: InProceedings},
	{Key: "moore2000introducing", Authors: []string{"Michelle Moore"},
		Title: "Introducing parallel processing concepts",
		Venue: "Journal of Computing Sciences in Colleges", Year: 2000, Kind: Article},
	{Key: "kolikant2001gardeners", Authors: []string{"Yifat B.-D. Kolikant"},
		Title: "Gardeners and cinema tickets: High school students' preconceptions of concurrency",
		Venue: "Computer Science Education", Year: 2001, Kind: Article},
	{Key: "andrianoff2002role", Authors: []string{"Steven K. Andrianoff", "David B. Levine"},
		Title: "Role playing in an object-oriented world",
		Venue: "SIGCSE", Year: 2002, Kind: InProceedings},
	{Key: "sivilotti2003introducing", Authors: []string{"Paolo A. G. Sivilotti", "Murat Demirbas"},
		Title: "Introducing middle school girls to fault tolerant computing",
		Venue: "SIGCSE", Year: 2003, Kind: InProceedings,
		URL: "http://web.cse.ohio-state.edu/~sivilotti.1/outreach/FESC02/"},
	{Key: "neeman2006analogies", Authors: []string{"Henry Neeman", "Lloyd Lee", "Julia Mullen", "Gerard Newman"},
		Title: "Analogies for teaching parallel computing to inexperienced programmers",
		Venue: "ITiCSE-WGR", Year: 2006, Kind: InProceedings},
	{Key: "sivilotti2007suitability", Authors: []string{"Paolo A. G. Sivilotti", "Scott M. Pike"},
		Title: "The suitability of kinesthetic learning activities for teaching distributed algorithms",
		Venue: "SIGCSE", Year: 2007, Kind: InProceedings},
	{Key: "lewandowski2007commonsense", Authors: []string{"Gary Lewandowski", "Dennis J. Bouvier", "Robert McCartney", "Kate Sanders", "Beth Simon"},
		Title: "Commonsense computing (episode 3): Concurrency and concert tickets",
		Venue: "ICER", Year: 2007, Kind: InProceedings},
	{Key: "neeman2008supercomputing", Authors: []string{"Henry Neeman", "Horst Severini", "Daniel Wu"},
		Title: "Supercomputing in plain english: Teaching cyberinfrastructure to computing novices",
		Venue: "SIGCSE Bulletin", Year: 2008, Kind: Article,
		URL: "http://www.oscer.ou.edu/education.php"},
	{Key: "bell2009unplugged", Authors: []string{"Tim Bell", "Jason Alexander", "Isaac Freeman", "Matthew Grimley"},
		Title: "Computer science unplugged: School students doing real computing without computers",
		Venue: "The New Zealand Journal of Applied Computing and Information Technology", Year: 2009, Kind: Article,
		URL: "https://csunplugged.org/"},
	{Key: "chesebrough2010parallel", Authors: []string{"Robert A. Chesebrough", "Ivan Turner"},
		Title: "Parallel computing: At the interface of high school and industry",
		Venue: "SIGCSE", Year: 2010, Kind: InProceedings},
	{Key: "lewandowski2010commonsense", Authors: []string{"Gary Lewandowski", "Dennis J. Bouvier", "Tzu-Yi Chen", "Robert McCartney", "Kate Sanders", "Beth Simon", "Tammy VanDeGrift"},
		Title: "Commonsense understanding of concurrency: Computing students and concert tickets",
		Venue: "Communications of the ACM", Year: 2010, Kind: Article},
	{Key: "sivilotti2010kinesthetic", Authors: []string{"Paolo A. G. Sivilotti"},
		Title: "Kinesthetic learning activities in an upper-division computer science course",
		Venue: "NAE Frontiers of Engineering Education", Year: 2010, Kind: InProceedings},
	{Key: "giacaman2012teaching", Authors: []string{"Nasser Giacaman"},
		Title: "Teaching by example: Using analogies and live coding demonstrations to teach parallel computing concepts to undergraduate students",
		Venue: "IPDPSW", Year: 2012, Kind: InProceedings,
		URL: "https://doi.org/10.1109/IPDPSW.2012.158"},
	{Key: "bogaerts2014limited", Authors: []string{"Steven A. Bogaerts"},
		Title: "Limited time and experience: Parallelism in CS1",
		Venue: "IPDPSW", Year: 2014, Kind: InProceedings},
	{Key: "eum2014teaching", Authors: []string{"Jinho Eum", "Simha Sethumadhavan"},
		Title: "Teaching microarchitecture through metaphors",
		Venue: "Columbia University", Year: 2014, Kind: TechReport},
	{Key: "bogaerts2017one", Authors: []string{"Steven A. Bogaerts"},
		Title: "One step at a time: Parallelism in an introductory programming course",
		Venue: "Journal of Parallel and Distributed Computing", Year: 2017, Kind: Article},
	{Key: "ghafoor2019unplugged", Authors: []string{"Sheikh K. Ghafoor", "David W. Brown", "Mike Rogers", "Thomas Hines"},
		Title: "Unplugged activities to introduce parallel computing in introductory programming classes: An experience report",
		Venue: "ITiCSE", Year: 2019, Kind: InProceedings,
		URL: "https://csc.tntech.edu/pdcincs/index.php/ipdc-modules/"},
	{Key: "chitra2019activity", Authors: []string{"P. Chitra", "Sheikh K. Ghafoor"},
		Title: "Activity based approach for teaching parallel computing: An indian experience",
		Venue: "IPDPSW", Year: 2019, Kind: InProceedings},
	{Key: "smith2019evaluating", Authors: []string{"Melissa Smith", "Srishti Srivastava"},
		Title: "Evaluating student engagement towards integrating parallel and distributed computing (PDC) topics in undergraduate level computer science curriculum",
		Venue: "SIGCSE", Year: 2019, Kind: InProceedings},
	{Key: "srivastava2019assessing", Authors: []string{"Srishti Srivastava", "Melissa Smith", "Awan Ghimire", "Sen Gao"},
		Title: "Assessing the integration of parallel and distributed computing in early undergraduate computer science curriculum using unplugged activities",
		Venue: "EduHPC", Year: 2019, Kind: InProceedings},
	{Key: "ghafoor2019ipdc", Authors: []string{"Sheikh K. Ghafoor", "Mike Rogers", "David Brown", "Austin Haynes"},
		Title: "iPDC modules (unplugged)",
		Venue: "course materials site", Year: 2019, Kind: Web,
		URL: "https://csc.tntech.edu/pdcincs/index.php/ipdc-modules/"},
	{Key: "sivilotti2019parallel", Authors: []string{"Paolo A. Sivilotti"},
		Title: "Parallel programming: Parallel programs are fast",
		Venue: "instructor handout", Year: 2002, Kind: Web,
		URL: "http://web.cse.ohio-state.edu/~sivilotti.1/outreach/FESC02/parallel.pdf"},
	{Key: "matthews2020pdcunplugged", Authors: []string{"Suzanne J. Matthews"},
		Title: "PDCunplugged: A free repository of unplugged parallel distributed computing activities",
		Venue: "IPDPSW", Year: 2020, Kind: InProceedings,
		URL: "https://www.pdcunplugged.org/"},
}

// All returns the bibliography sorted by year then key.
func All() []Reference {
	out := append([]Reference(nil), references...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ByKey returns a reference by citation key.
func ByKey(key string) (Reference, bool) {
	for _, r := range references {
		if r.Key == key {
			return r, true
		}
	}
	return Reference{}, false
}

// Resolve matches a free-text citation (as stored in an activity's
// Citations section) to a bibliography entry. A candidate must mention the
// first author's surname; it is then scored by title-word overlap plus a
// bonus when the publication year appears. Web resources and handouts
// often carry no year, so surname plus strong title overlap suffices.
func Resolve(citation string) (Reference, bool) {
	lower := strings.ToLower(citation)
	var best Reference
	bestScore := 0
	for _, r := range references {
		if !strings.Contains(lower, strings.ToLower(r.Surname())) {
			continue
		}
		score := titleOverlap(lower, strings.ToLower(r.Title))
		if strings.Contains(citation, fmt.Sprintf("%d", r.Year)) {
			score += 2
		}
		if score > bestScore {
			best, bestScore = r, score
		}
	}
	return best, bestScore >= 2
}

// titleOverlap counts how many words of title appear in text.
func titleOverlap(text, title string) int {
	n := 0
	for _, w := range strings.Fields(title) {
		if len(w) >= 4 && strings.Contains(text, w) {
			n++
		}
	}
	return n
}

// Export renders a BibTeX file for the given references (all of them when
// refs is nil).
func Export(refs []Reference) string {
	if refs == nil {
		refs = All()
	}
	var b strings.Builder
	for _, r := range refs {
		b.WriteString(r.BibTeX())
		b.WriteByte('\n')
	}
	return b.String()
}

// Span returns the earliest and latest publication years in the
// bibliography — the "thirty years of PDC literature" the paper curates.
func Span() (earliest, latest int) {
	earliest, latest = references[0].Year, references[0].Year
	for _, r := range references {
		if r.Year < earliest {
			earliest = r.Year
		}
		if r.Year > latest {
			latest = r.Year
		}
	}
	return earliest, latest
}

// Decade buckets references per decade, e.g. 1990 -> count.
func Decades() map[int]int {
	out := map[int]int{}
	for _, r := range references {
		out[(r.Year/10)*10]++
	}
	return out
}
