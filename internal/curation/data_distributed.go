package curation

import "pdcunplugged/internal/activity"

// distributedActivities returns the concurrency, coordination and
// distributed-systems dramatizations (races, mutual exclusion, consensus,
// self-stabilization).
func distributedActivities() []activity.Activity {
	return []activity.Activity{
		{
			Slug:          "juice-sweetening-race",
			Title:         "Juice-Sweetening Robots",
			Date:          "1999-06-01",
			CS2013:        []string{"PD_CommunicationAndCoordination"},
			CS2013Details: []string{"PCC_1", "PCC_2"},
			TCPP:          []string{"TCPP_Programming", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"C_DataRaces", "A_CriticalRegions", "A_MutualExclusion", "C_Concurrency"},
			Courses:       []string{"CS2", "DSA", "Systems"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"role-play", "food"},
			Author:        "Mordechai Ben-Ari and Yifat Ben-David Kolikant",
			Details: `A constructivist scenario: two robots (students) are each told to
sweeten a glass of juice by checking whether sugar has been added and adding
a spoonful if not. Acting concurrently, both robots test the glass before
either adds sugar, and the juice ends up doubly sweetened: a race condition
played out physically. The class re-runs the scenario with a rule that only
one robot may hold the spoon at a time, discovering mutual exclusion and the
need for an atomic test-and-set. Interleavings are recorded on the board so
students see exactly which orderings produce the wrong outcome.

**Running it**: script the two robots' steps on cards (LOOK, DECIDE, POUR)
and let a third student call the schedule by pointing at whichever robot
acts next — the class becomes the scheduler and discovers it can force
both good and bad outcomes. The constructivist point lands when students
articulate *why* the bad schedule is bad: the look and the pour must be
indivisible. Ben-Ari and Kolikant report that students initially propose
politeness rules ("pour slowly") before converging on mutual exclusion.`,
			Accessibility: `Uses a simple table-top prop; the robot roles involve standing
but can be played seated. The scenario translates well across cultures.`,
			Assessment: "None known.",
			Citations: []string{
				"M. Ben-Ari and Y. B.-D. Kolikant, \"Thinking parallel: The process of learning concurrency,\" ITiCSE 1999.",
			},
		},
		{
			Slug:          "concert-tickets",
			Title:         "Concert Tickets",
			Date:          "2001-09-01",
			CS2013:        []string{"PD_CommunicationAndCoordination", "PD_CloudComputing"},
			CS2013Details: []string{"PCC_1", "PCC_9", "CC_2"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"C_DataRaces", "A_MutualExclusion", "A_ProducerConsumer"},
			Courses:       []string{"CS0", "CS1", "CS2", "Systems"},
			Medium:        []string{"role-play", "coins"},
			Author:        "Yifat Ben-David Kolikant",
			Details: `Students play ticket agents at separate booths selling seats for
the same concert from a shared seating chart. Buyers (other students, paying
with coins) arrive at different booths simultaneously and ask for the same
seats. Agents who check availability and then sell discover they have sold
one seat twice: a check-then-act anomaly across replicas of shared data.
The class designs fixes: a single shared chart with turn-taking, seat
partitioning per booth, or a reservation step, and compares the throughput
each fix allows. The activity was refined by Lewandowski et al. to probe
students' commonsense understanding of concurrency before instruction.

**Running it**: run one booth first so the serial baseline is boring by
design, then open three booths with no rules and let the double-sale
happen naturally (seed the buyers with overlapping seat requests). Collect
the fixes students propose on the board and tax each with its cost: the
single chart serializes, partitioning wastes seats under skew, reservation
adds a round trip — there is no free fix, which is the lesson.`,
			Variations: []string{
				"Commonsense Computing interview version posing the ticket scenario to pre-CS1 students (Lewandowski et al. 2007, 2010)",
			},
			Accessibility: `A discussion-driven scenario with no movement demands; works for
remote and large-lecture settings.`,
			Assessment: `Lewandowski et al. used the scenario as a research instrument with
several hundred students across institutions; most beginning students could
identify the double-sale hazard and many proposed workable coordination
schemes, supporting the activity's use as a CS1 opener.`,
			Citations: []string{
				"Y. B.-D. Kolikant, \"Gardeners and cinema tickets: High school students' preconceptions of concurrency,\" Computer Science Education, vol. 11, no. 3, pp. 221-245, 2001.",
				"G. Lewandowski, D. J. Bouvier, R. McCartney, K. Sanders, and B. Simon, \"Commonsense computing (episode 3): Concurrency and concert tickets,\" ICER 2007.",
				"G. Lewandowski et al., \"Commonsense understanding of concurrency: Computing students and concert tickets,\" Commun. ACM, vol. 53, no. 7, pp. 60-70, 2010.",
			},
		},
		{
			Slug:          "gardeners",
			Title:         "Gardeners",
			Date:          "2001-09-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_CloudComputing"},
			CS2013Details: []string{"PD_1", "CC_2"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"C_MasterWorker", "C_Asynchrony", "A_LoadBalancing", "A_TasksAndThreads"},
			Courses:       []string{"K_12", "CS0", "Systems"},
			Senses:        []string{"movement"},
			Medium:        []string{"role-play"},
			Author:        "Yifat Ben-David Kolikant",
			Details: `A team of gardeners must tend a garden of many beds: weeding,
watering, planting. Students play gardeners who divide the beds among
themselves, then act out what happens when tasks take uneven time, when two
gardeners need the same watering can, and when one gardener finishes early.
The scenario surfaces work distribution, shared-tool contention and the
question of when the whole job is done, mirroring a master-worker pool over
a shared task list replicated in each gardener's head.

**Running it**: write each bed's chores on index cards with hidden time
costs (revealed when picked up), so static splitting is a genuine gamble.
The "when are we done?" question deserves its own minute: students usually
propose shouting, then discover that a gardener mid-bed cannot answer, and
converge on a done-counter — termination detection discovered from need.`,
			Accessibility: `Role-play with light movement; can be run as a table-top
planning exercise for groups with mobility constraints.`,
			Assessment: "None known.",
			Citations: []string{
				"Y. B.-D. Kolikant, \"Gardeners and cinema tickets: High school students' preconceptions of concurrency,\" Computer Science Education, vol. 11, no. 3, pp. 221-245, 2001.",
			},
		},
		{
			Slug:          "selfstabilizing-token-ring",
			Title:         "Self-Stabilizing Token Ring",
			Date:          "2003-02-01",
			CS2013:        []string{"PD_CommunicationAndCoordination"},
			CS2013Details: []string{"PCC_1"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"C_MutualExclusionAlg", "C_FaultTolerance"},
			Courses:       []string{"K_12", "DSA", "Systems"},
			Senses:        []string{"movement"},
			Medium:        []string{"role-play", "pens"},
			Author:        "Paolo Sivilotti and Murat Demirbas",
			Links:         []string{"http://web.cse.ohio-state.edu/~sivilotti.1/outreach/FESC02/"},
			Details: `Students stand in a circle, each holding up some number of fingers
(their state). A student holds "the token" (a pen) exactly when her state
relates to her neighbor's by Dijkstra's K-state rule; only the token holder
may act (enter the critical section) and then update her state, passing the
token on. The facilitator then corrupts states arbitrarily, creating zero or
several tokens, and the class steps the rule until exactly one token
circulates again, experiencing self-stabilization: the ring repairs itself
from any fault without central control. Developed to introduce middle school
girls to fault-tolerant computing.

**Running it**: use K = class size + 1 states (fingers work up to ten
students; cards beyond). Appoint a saboteur whose job is to scramble the
circle as maliciously as possible — classes quickly discover that no
scramble survives. Two discussion prompts carry the theory: why can the
ring never reach a token-free state (someone's rule always fires), and why
does machine zero's different rule break the symmetry that would otherwise
let multiple tokens circulate forever?`,
			Accessibility: `Requires forming a circle; a seated circle works equally well.
State can be shown with cards instead of fingers for students with limited
dexterity.`,
			Assessment: "None known.",
			Citations: []string{
				"P. A. G. Sivilotti and M. Demirbas, \"Introducing middle school girls to fault tolerant computing,\" SIGCSE 2003.",
			},
		},
		{
			Slug:          "stable-leader-election",
			Title:         "Stable Leader Election",
			Date:          "2007-03-01",
			CS2013:        []string{"PD_CommunicationAndCoordination", "PD_DistributedSystems"},
			CS2013Details: []string{"PCC_8", "DS_9"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"C_Asynchrony"},
			Courses:       []string{"DSA", "Systems"},
			Senses:        []string{"movement"},
			Medium:        []string{"role-play", "pens"},
			Author:        "Paolo Sivilotti and Scott Pike",
			Details: `Students form a ring of processes that must agree on a single
leader while messages travel at unpredictable speeds (students amble at
different paces carrying pen-and-paper messages). Each student forwards the
largest identifier seen so far; a student who receives her own identifier
back declares herself leader. The assertional framing asks the class to
state the invariant (at most one student ever declares) and the progress
property (eventually someone declares), and to argue both hold for every
possible message interleaving rather than for one traced run.

**Running it**: identifiers on large cards, messages on sticky notes.
Instruct carriers to dawdle unpredictably — the point is that no timing
assumption is available. Midway, freeze the room and ask who *might* still
become leader; the answer (exactly those whose id has not yet met a larger
one) is the invariant doing real work.`,
			Accessibility: `Message-carrying movement can be replaced by passing notes along
a seated row; identifiers on large cards aid visibility.`,
			Assessment: "None known.",
			Citations: []string{
				"P. A. G. Sivilotti and S. M. Pike, \"The suitability of kinesthetic learning activities for teaching distributed algorithms,\" SIGCSE 2007.",
			},
		},
		{
			Slug:          "parallel-garbage-collection",
			Title:         "Parallel Garbage Collection",
			Date:          "2007-03-01",
			CS2013:        []string{"PD_ParallelDecomposition"},
			CS2013Details: []string{"PD_4"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"C_GraphTraversal", "C_Dependencies"},
			Courses:       []string{"DSA", "Systems"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"role-play", "paper"},
			Author:        "Paolo Sivilotti and Scott Pike",
			Details: `An object graph is taped to the floor: paper plates are objects,
string segments are references, and a marked plate is the root set. Student
collectors start at the roots and mark reachable plates concurrently, each
following references from plates they have claimed. The class verifies the
invariant that marked plates are exactly those reachable from a root, no
matter how the collectors' walks interleave, and observes that extra
collectors shorten the marking phase until the graph's shape (its dependency
structure) limits further speedup.

**Running it**: build the floor graph with a long chain section and a
bushy section; collectors fly through the bush in parallel but queue on
the chain, making the span/work distinction physical. A second round with
a "mutator" student who re-wires one string mid-mark motivates why real
collectors stop the world or intercept writes.`,
			Accessibility: `Requires walking the floor graph; a table-sized graph drawn on
poster paper with counters as markers is an equivalent seated variant.`,
			Assessment: "None known.",
			Citations: []string{
				"P. A. G. Sivilotti and S. M. Pike, \"The suitability of kinesthetic learning activities for teaching distributed algorithms,\" SIGCSE 2007.",
			},
		},
		{
			Slug:          "byzantine-generals",
			Title:         "Byzantine Generals",
			Date:          "1994-12-01",
			CS2013:        []string{"PD_CommunicationAndCoordination", "PD_DistributedSystems", "PD_CloudComputing"},
			CS2013Details: []string{"PCC_8", "DS_9", "CC_2"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"C_Asynchrony", "C_FaultTolerance", "K_DistributedSecurity"},
			Courses:       []string{"CS0", "CS2", "DSA", "Systems"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"role-play", "paper"},
			Author:        "William Lloyd",
			Details: `Student generals camped around a city must agree to attack or
retreat, exchanging only written messengers' notes; some generals are
secretly traitors who send conflicting notes. Rounds of the oral-messages
algorithm are played with and without traitors, and the class tallies when
loyal generals still reach agreement. Students discover the threshold result
(more than two-thirds must be loyal), why a signed-note variant helps, and
how the same problem underlies keeping replicated shared data consistent
across unreliable machines.

**Running it**: seven generals with two secret traitors is the sweet spot:
large enough that the majority vote visibly absorbs the lies, small enough
to tally rounds on the board. Issue traitors a sealed instruction card
("answer arbitrarily; try to split the loyal camp") so their behaviour is
adversarial rather than merely random. After a three-general round fails,
let the class conjecture the threshold before revealing n > 3t.`,
			Accessibility: `Note-passing works seated; color-coded ballots reduce the
reading load for younger audiences.`,
			Assessment: "None known.",
			Citations: []string{
				"W. S. Lloyd, \"Exploring the byzantine generals problem with beginning computer science students,\" SIGCSE Bull., vol. 26, no. 4, pp. 21-24, 1994.",
			},
		},
		{
			Slug:          "orange-game",
			Title:         "The Orange Game (Routing and Deadlock)",
			Date:          "2009-01-01",
			CS2013:        []string{"PD_CommunicationAndCoordination"},
			CS2013Details: []string{"PCC_3"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"C_GraphTraversal", "C_Asynchrony"},
			Courses:       []string{"K_12", "CS0", "Systems"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"game", "food"},
			Author:        "Tim Bell, Jason Alexander, Isaac Freeman and Matthew Grimley (CS Unplugged)",
			Links:         []string{"https://csunplugged.org/en/topics/routing-and-deadlock/"},
			Details: `Students sit in a circle, each labeled with a letter and holding
oranges labeled with other students' letters; each student has one free
hand. Oranges may only be passed to a neighbor's free hand, and the goal is
for every student to hold the oranges bearing their own letter. With greedy
passing the circle quickly deadlocks: everyone's hands are full and no move
helps. The class develops strategies, keeping a hand free, routing oranges
the long way around, and connects the experience to blocking message sends,
routing in networks, and deadlock avoidance.

**Running it**: ten to twelve students per circle; duplicate one letter
and leave one orange-less student so moves exist at the start. When the
circle deadlocks, freeze it and draw the waits-for cycle on the board —
every hand is full and every wanted hand is full — then restart with the
one-free-hand rule and watch the cycle become impossible.`,
			Accessibility: `Passing can happen along a table top; bean bags substitute for
oranges where food props are unsuitable.`,
			Assessment: "None known.",
			Citations: []string{
				"T. Bell, J. Alexander, I. Freeman, and M. Grimley, \"Computer science unplugged: School students doing real computing without computers,\" NZ Journal of Applied Computing and Information Technology, vol. 13, no. 1, pp. 20-29, 2009.",
			},
		},
	}
}
