package curation

import "pdcunplugged/internal/activity"

// sortingActivities returns the sorting-and-selection dramatizations, the
// most common family of unplugged PDC activities in the literature
// (Section III-A).
func sortingActivities() []activity.Activity {
	return []activity.Activity{
		{
			Slug:          "findsmallestcard",
			Title:         "FindSmallestCard",
			Date:          "1994-04-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_2", "PAAP_3"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"C_ParallelSelection", "C_TimeCost", "C_Speedup", "C_SPMD"},
			Courses:       []string{"K_12", "CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "touch", "accessible"},
			Medium:        []string{"cards"},
			Author:        "Gilbert Bachelis, Bruce Maxim, David James and Quentin Stout",
			Details: `Every student receives one playing card. Working alone, a single
volunteer finds the smallest card in the room by walking to each student in
turn: a linear scan that takes as many comparisons as there are students.
The class then repeats the search cooperatively: students pair up, compare
cards, and the holder of the larger card sits down. Half the class is
eliminated in each round, so the smallest card emerges after roughly log2(n)
rounds. Students count both the total comparisons (the *work*) and the
number of rounds (the *span*), and observe that cooperating students finish
dramatically sooner even though the class performs about the same number of
comparisons overall.

**Running it**: 10-15 minutes including both phases. Deal cards face down
and reveal on a signal so the serial and parallel runs start identically.
Discussion prompts: why does the cooperative version need everyone to act
at once? What would happen with an odd student out each round? Where else
does "pair up and keep the winner" appear in computing? The last question
lands the reduction pattern the activity embodies.`,
			Variations: []string{
				"Largest-card variant used as a warm-up before parallel sorting (Moore 2000)",
				"Tournament bracket drawn on the board so students can trace the reduction tree",
				"Summing variant: pairs add their cards instead of comparing, turning the min-reduction into a sum-reduction",
			},
			Accessibility: `Tactile and visual; students who cannot move can hold up cards
and have partners come to them. Judged generally accessible with minimal
modification.`,
			Assessment: "None known.",
			Citations: []string{
				"G. F. Bachelis, B. R. Maxim, D. A. James, and Q. F. Stout, \"Bringing algorithms to life: Cooperative computing activities using students as processors,\" School Science and Mathematics, vol. 94, no. 4, pp. 176-186, 1994.",
				"B. R. Maxim, G. Bachelis, D. James, and Q. Stout, \"Introducing parallel algorithms in undergraduate computer science courses (tutorial session),\" SIGCSE 1990.",
			},
		},
		{
			Slug:          "cardsort-parallel",
			Title:         "Parallel Card Sorting",
			Date:          "1994-04-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_3", "PAAP_4", "PAAP_6"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"A_ParallelSorting", "C_DivideAndConquer", "C_Speedup", "A_TasksAndThreads"},
			Courses:       []string{"K_12", "CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "touch", "accessible"},
			Medium:        []string{"cards"},
			Author:        "Gilbert Bachelis, Bruce Maxim, David James and Quentin Stout",
			Details: `Teams of students sort a shuffled deck cooperatively. Each team
member first sorts a small hand of cards alone, then pairs of students merge
their sorted hands, and pairs of pairs merge again until one sorted deck
remains: a live parallel merge sort. Teams race a single volunteer sorting
the full deck sequentially, then count merge steps to see why the team wins.
Comparing team sizes exposes the divide-and-conquer recursion and lets
students measure speedup empirically against the sequential analog.`,
			Variations: []string{
				"Whole-class variant where each student holds a single card (Moore 2000)",
				"CS1 adaptation with number cards and explicit step counting (Ghafoor et al. 2019)",
			},
			Accessibility: `Performed seated around tables; tactile and visual. Judged
generally accessible with minimal modification.`,
			Assessment: "None known.",
			Citations: []string{
				"G. F. Bachelis, B. R. Maxim, D. A. James, and Q. F. Stout, \"Bringing algorithms to life: Cooperative computing activities using students as processors,\" School Science and Mathematics, vol. 94, no. 4, pp. 176-186, 1994.",
				"M. Moore, \"Introducing parallel processing concepts,\" J. Comput. Sci. Coll., vol. 15, no. 3, pp. 173-180, 2000.",
				"S. K. Ghafoor, D. W. Brown, M. Rogers, and T. Hines, \"Unplugged activities to introduce parallel computing in introductory programming classes,\" ITiCSE 2019.",
			},
		},
		{
			Slug:          "oddeven-transposition",
			Title:         "Odd-Even Transposition Sort",
			Date:          "1994-03-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_3", "PAAP_3"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"A_ParallelSorting", "C_TimeCost", "C_SPMD", "C_Speedup"},
			Courses:       []string{"K_12", "CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"cards"},
			Author:        "Adam Rifkin",
			Links:         []string{"http://web.cse.ohio-state.edu/~sivilotti.1/outreach/FESC02/parallel.pdf"},
			Details: `Students stand in a line, each holding a numbered card. On odd
steps, students in odd positions compare cards with their right neighbors
and swap if out of order; on even steps, students in even positions do the
same. Everyone acts simultaneously, dramatizing a parallel bubble sort: the
line is guaranteed sorted after n steps. Students predict how many steps a
sequential bubble sort would need and contrast n parallel rounds against
roughly n^2/2 sequential comparisons. Sivilotti provides a one-page
instructor write-up of the dramatization.

**Running it**: number the cards distinctly and have students hold them at
chest height so the whole room can check each phase. Call phases aloud
("odd pairs, compare!") to enforce lockstep. Asking the class to predict
the worst case before starting (a reversed line) makes the linear bound
memorable. Misconception to surface: students expect the line sorted as
soon as one phase is quiet — show that a quiet odd phase can still hide an
out-of-order even pair.`,
			Variations: []string{
				"Workshop version for middle school girls, partially assessed (Sivilotti and Demirbas 2003)",
			},
			Accessibility: `Requires standing and swapping positions; may be inappropriate
for students with mobility issues. A seated variant passes cards instead of
moving bodies.`,
			Assessment: `Incorporated into a fault-tolerant computing workshop for middle
school girls and partially assessed via exit surveys; participants correctly
recalled the parallel sorting rule (Sivilotti and Demirbas 2003).`,
			Citations: []string{
				"A. Rifkin, \"Teaching parallel programming and software engineering concepts to high school students,\" SIGCSE Bull., vol. 26, no. 1, pp. 26-30, 1994.",
				"P. A. G. Sivilotti and M. Demirbas, \"Introducing middle school girls to fault tolerant computing,\" SIGCSE 2003.",
				"P. A. Sivilotti, \"Parallel programming: Parallel programs are fast,\" instructor handout.",
			},
		},
		{
			Slug:          "parallel-radixsort",
			Title:         "Parallel Radix Sort",
			Date:          "1994-03-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_3", "PD_5", "PAAP_3"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"A_ParallelSorting"},
			Courses:       []string{"K_12", "CS2", "DSA"},
			Senses:        []string{"visual", "touch"},
			Medium:        []string{"cards"},
			Author:        "Adam Rifkin",
			Details: `Students dramatize radix sort on multi-digit numbered cards. Bins
for each digit value are laid out on tables, and teams of students act as
bin workers: in each pass the class distributes all cards into bins by the
current digit simultaneously, then collects them in bin order. Because the
distribution step is data-parallel, adding more bin workers visibly speeds
up each pass. The class discusses why the per-digit passes must happen in
sequence while the work within a pass can be fully parallel.

**Running it**: three-digit cards and ten shoebox bins per team work well;
appoint one student per team as the collector who concatenates bins in
order, making the stability requirement concrete (cards must keep their
within-bin arrival order or the earlier passes are wasted). Ask afterwards
why the same trick cannot sort words of wildly different lengths without
padding — a question that previews keys versus comparisons.`,
			Accessibility: `Tactile and visual; cards and bins can be arranged within reach
of seated students.`,
			Assessment: "None known.",
			Citations: []string{
				"A. Rifkin, \"Teaching parallel programming and software engineering concepts to high school students,\" SIGCSE Bull., vol. 26, no. 1, pp. 26-30, 1994.",
				"P. A. G. Sivilotti and M. Demirbas, \"Introducing middle school girls to fault tolerant computing,\" SIGCSE 2003.",
			},
		},
		{
			Slug:          "nondeterministic-sort",
			Title:         "Non-Deterministic Sorting",
			Date:          "2007-03-01",
			CS2013:        []string{"PD_ParallelAlgorithms", "PD_FormalModels"},
			CS2013Details: []string{"PAAP_5", "FMS_6"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"A_ParallelSorting", "C_Asynchrony", "C_NonDeterminism"},
			Courses:       []string{"DSA", "Systems"},
			Senses:        []string{"touch"},
			Medium:        []string{"coins"},
			Author:        "Paolo Sivilotti and Scott Pike",
			Details: `An assertional-view activity: students hold numbered tokens in a
row, and any out-of-order adjacent pair may swap at any moment, chosen
non-deterministically (a coin flip selects which eligible pair acts).
Rather than tracing one execution, students identify the invariant (the
multiset of values never changes) and the variant function (the number of
inversions strictly decreases with every swap), proving the row always
becomes sorted no matter which order the swaps fire in. The activity
introduces reasoning about all executions of a concurrent algorithm instead
of simulating a single one.

**Running it**: before any token moves, have students write two claims
on the board — what never changes, and what always shrinks — then let the
coin drive the schedule. When the row sorts, revisit the claims: the proof
was finished before the first swap. Sivilotti's experience is that this
inversion (argue first, run second) is precisely what upper-level students
need for distributed algorithms, where no single run is representative.`,
			Accessibility: `Performed seated at a table with tokens or coins; low mobility
demands but relies on symbol manipulation.`,
			Assessment: "None known.",
			Citations: []string{
				"P. A. G. Sivilotti and S. M. Pike, \"The suitability of kinesthetic learning activities for teaching distributed algorithms,\" SIGCSE 2007.",
				"P. A. G. Sivilotti, \"Kinesthetic learning activities in an upper-division computer science course,\" NAE FEE 2010.",
			},
		},
		{
			Slug:          "human-sorting-network",
			Title:         "Human Sorting Network",
			Date:          "2009-01-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PD_3", "PAAP_9", "PA_3"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Algorithms"},
			TCPPDetails:   []string{"C_SIMD", "K_DataVsControlParallelism", "A_ParallelSorting", "C_TimeCost"},
			Courses:       []string{"K_12", "DSA"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"game", "board"},
			Author:        "Tim Bell, Jason Alexander, Isaac Freeman and Matthew Grimley (CS Unplugged)",
			Links:         []string{"https://csunplugged.org/en/topics/sorting-networks/"},
			Details: `A six-input sorting network is chalked on the ground. Six students
holding numbers walk the network simultaneously; wherever two lanes meet at
a comparator node, the pair compares values and the smaller takes the left
exit. All comparisons at the same depth happen at once, so the group emerges
sorted after a fixed number of lockstep stages regardless of input. Classes
race teams through the network and discuss how the fixed comparator layout
is data-independent hardware-style parallelism.

**Running it**: chalk the network large enough that two students can
stand at a comparator node together. Run it once with numbers, once with
words (alphabetical order), and once with the students' own birthdays —
the same network sorts them all, which is the data-independence point.
Then run it "backwards" from the outputs to show it is not reversible, a
nice contrast with the role-played algorithms students control.`,
			Accessibility: `Strongly kinesthetic; a desk-sized version with tokens sliding on
a printed network accommodates students who cannot walk the chalk network.`,
			Assessment: "None known.",
			Citations: []string{
				"T. Bell, J. Alexander, I. Freeman, and M. Grimley, \"Computer science unplugged: School students doing real computing without computers,\" NZ Journal of Applied Computing and Information Technology, vol. 13, no. 1, pp. 20-29, 2009.",
			},
		},
	}
}
