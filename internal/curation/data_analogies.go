package curation

import "pdcunplugged/internal/activity"

// analogyActivities returns the analogy-based interventions, led by the
// OSCER "Supercomputing in Plain English" series (Neeman et al.).
func analogyActivities() []activity.Activity {
	const oscer = "http://www.oscer.ou.edu/education.php"
	return []activity.Activity{
		{
			Slug:          "load-balancing-analogy",
			Title:         "Load Balancing: Splitting the Chores",
			Date:          "2006-06-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelPerformance"},
			CS2013Details: []string{"PD_5", "PP_1"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"A_LoadBalancing", "C_SchedulingAndMapping", "C_Efficiency"},
			Courses:       []string{"CS0", "CS1", "CS2", "Systems"},
			Senses:        []string{"visual", "accessible"},
			Medium:        []string{"analogy", "board"},
			Author:        "Henry Neeman, Lloyd Lee, Julia Mullen and Gerard Newman",
			Links:         []string{oscer},
			Details: `Household chores are divided among roommates on the board: one
assignment gives each roommate the same number of chores, another the same
total time. Mowing the lawn next to washing a teaspoon makes the imbalance
vivid: the wall-clock finish time is the slowest roommate's total. Students
re-balance the chart, then see the same picture as processors with uneven
work, naming static versus dynamic assignment and why the latter helps when
chore lengths are unpredictable.

**Running it**: let students assign the chores themselves before naming
any strategy; nearly every class invents longest-first greedy unprompted,
which earns it the name "what you already did" when LPT appears later in
lecture. Close with the pathological case — one chore longer than all
others combined — to show no assignment beats the longest chore.`,
			Accessibility: `Pure discussion plus a board chart; no movement or props.
Judged generally accessible.`,
			Assessment: "None known.",
			Citations: []string{
				"H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching parallel computing to inexperienced programmers,\" ITiCSE-WGR 2006.",
				"H. Neeman, H. Severini, and D. Wu, \"Supercomputing in plain english: Teaching cyberinfrastructure to computing novices,\" SIGCSE Bull., vol. 40, no. 2, 2008.",
			},
		},
		{
			Slug:          "jigsaw-puzzle",
			Title:         "The Jigsaw Puzzle (Shared Memory)",
			Date:          "2006-06-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelPerformance", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PD_2", "PP_3", "PA_1"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Programming"},
			TCPPDetails:   []string{"C_SharedVsDistributedMemory", "C_SharedMemoryModel", "C_DataDistribution", "A_LoadBalancing"},
			Courses:       []string{"K_12", "CS0", "CS1", "CS2", "Systems"},
			Senses:        []string{"visual", "accessible"},
			Medium:        []string{"analogy"},
			Author:        "Henry Neeman, Lloyd Lee, Julia Mullen and Gerard Newman",
			Links:         []string{oscer},
			Details: `One person assembles a jigsaw puzzle alone. Add a second person at
the same table and the work goes faster, but the two reach for the same
pieces and get in each other's way: shared memory with contention. Seat
many helpers and the table gets crowded; split the puzzle across two tables
(distributed memory) and each pair works undisturbed but must walk pieces
between tables to join the halves. The analogy yields speedup, contention,
data distribution, and communication cost in one familiar scene.

**Extending it**: the scene scales through the whole course. Sorting the
pieces by colour first is a preprocessing step; giving each helper a
corner is data decomposition by locality; the sky (many identical pieces)
is the contended hot spot every helper reaches for; and gluing finished
sections together at the end is the reduction step. Returning to the same
table week after week lets each new concept land in a scene students
already own.`,
			Accessibility: `Told entirely as a story; an actual puzzle on a table is an
optional prop. Judged generally accessible.`,
			Assessment: "None known.",
			Citations: []string{
				"H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching parallel computing to inexperienced programmers,\" ITiCSE-WGR 2006.",
			},
		},
		{
			Slug:          "desert-islands",
			Title:         "Desert Islands (Distributed Memory)",
			Date:          "2006-06-01",
			CS2013:        []string{"PD_ParallelPerformance", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PP_3", "PA_1", "PA_8"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Programming", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"C_SharedVsDistributedMemory", "K_MIMD", "C_DistributedMemoryModel", "C_DataDistribution", "C_CommunicationOverhead", "K_ClusterComputing"},
			Courses:       []string{"CS2", "DSA", "Systems"},
			Medium:        []string{"analogy"},
			Author:        "Henry Neeman, Lloyd Lee, Julia Mullen and Gerard Newman",
			Links:         []string{oscer},
			Details: `Each worker lives alone on a desert island with her own filing
cabinet (local memory) and can only exchange information by mailing letters
that take days to arrive (message passing). Workers compute happily on local
data but any value a neighbor holds costs a round-trip letter. The analogy
motivates why distributed-memory clusters scale to many islands, why data
placement decides how much mail is sent, and why algorithms are redesigned
to batch letters rather than chat constantly.

**Extending it**: give each island a filing cabinet drawer of a shared
phone book and ask how to find one number — the class invents owner
lookup; then ask for the most common surname — the class invents local
tally plus a mailed reduction. Every collective operation has an island
story, which is why this analogy anchors whole distributed-memory
courses.`,
			Accessibility: `Pure narrative; no props or movement required.`,
			Assessment:    "None known.",
			Citations: []string{
				"H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching parallel computing to inexperienced programmers,\" ITiCSE-WGR 2006.",
				"H. Neeman, H. Severini, and D. Wu, \"Supercomputing in plain english: Teaching cyberinfrastructure to computing novices,\" SIGCSE Bull., vol. 40, no. 2, 2008.",
			},
		},
		{
			Slug:          "long-distance-phone-call",
			Title:         "The Long Distance Phone Call (Latency and Bandwidth)",
			Date:          "2006-06-01",
			CS2013:        []string{"PD_ParallelPerformance", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PP_3", "PA_8"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Programming", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"C_SharedVsDistributedMemory", "C_CommunicationOverhead", "K_PerformanceModeling"},
			Courses:       []string{"CS2", "DSA", "Systems"},
			Senses:        []string{"sound"},
			Medium:        []string{"analogy"},
			Author:        "Henry Neeman, Lloyd Lee, Julia Mullen and Gerard Newman",
			Links:         []string{oscer},
			Details: `Sending a message between machines is like an old long-distance
phone call: a fixed connection charge just to be put through (latency) plus
a per-minute charge for however long you talk (inverse bandwidth). Many
short calls cost mostly connection charges, so chatty programs pay dearly;
one long call amortizes the setup. Students fit the two-parameter cost model
to example message sizes and predict when batching messages wins: an alpha-
beta performance model in plain clothes.

**Running it**: hand out a fictional phone bill (a dozen calls with
durations and totals) and have pairs recover the two charges by fitting a
line — then reveal that measuring alpha and beta on a real cluster is done
exactly this way, with ping-pong messages of growing size. The batching
question ("would you rather make ten one-minute calls or one ten-minute
call?") gets the right answer from every student who has ever queued.`,
			Accessibility: `Entirely verbal. The paper notes this analogy has aged: students
with unlimited cell plans may find connection and per-minute charges
foreign, and culturally specific billing references may not translate.`,
			Assessment: "None known.",
			Citations: []string{
				"H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching parallel computing to inexperienced programmers,\" ITiCSE-WGR 2006.",
			},
		},
		{
			Slug:          "race-condition-analogy",
			Title:         "Race Conditions: The Shared Whiteboard",
			Date:          "2006-06-01",
			CS2013:        []string{"PD_CommunicationAndCoordination"},
			CS2013Details: []string{"PCC_1", "PCC_2"},
			TCPP:          []string{"TCPP_Programming", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"C_DataRaces", "A_Synchronization", "C_Concurrency", "C_NonDeterminism"},
			Courses:       []string{"CS1", "CS2", "Systems"},
			Senses:        []string{"visual"},
			Medium:        []string{"analogy", "board"},
			Author:        "Henry Neeman, Lloyd Lee, Julia Mullen and Gerard Newman",
			Links:         []string{oscer},
			Details: `Two volunteers update a running total on the whiteboard following
the same three-step script: read the number, add their amount on scratch
paper, write the result back. When their steps interleave, one update
vanishes, and re-running the volunteers produces different final totals on
different days: non-determinism from timing. The class enumerates the
interleavings on the board and identifies which step sequence must be made
indivisible, arriving at the lock abstraction from first principles.`,
			Accessibility: `Board-based demonstration visible to the whole room; volunteers
act seated or standing.`,
			Assessment: "None known.",
			Citations: []string{
				"H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching parallel computing to inexperienced programmers,\" ITiCSE-WGR 2006.",
			},
		},
		{
			Slug:          "resource-contention-analogy",
			Title:         "Resource Contention: One Photocopier",
			Date:          "2006-06-01",
			CS2013:        []string{"PD_ParallelPerformance", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PP_6", "PA_2"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Programming"},
			TCPPDetails:   []string{"C_CacheCoherence", "K_Multicore", "A_Synchronization", "C_Efficiency"},
			Courses:       []string{"CS2", "Systems"},
			Medium:        []string{"analogy"},
			Author:        "Henry Neeman, Lloyd Lee, Julia Mullen and Gerard Newman",
			Links:         []string{oscer},
			Details: `An office hires more workers to copy documents faster, but owns a
single photocopier. Two workers queue occasionally; twenty workers spend
their day waiting in line, and hiring more makes throughput worse. The
photocopier is the shared bus or memory bank of a multicore machine: adding
cores without adding paths to data yields contention, and keeping a private
stack of forms at one's own desk (a cache) helps only until two workers need
the same form (coherence traffic).

**Running it**: tell the story twice, once with two workers and once
with twenty, and let the class compute copies-per-hour both times from
simple numbers (each copy takes one minute, walking to the copier takes
two). The twenty-worker arithmetic produces a visibly absurd queue, and
asking "what would you buy: faster copier or second copier?" maps directly
onto memory bandwidth versus additional memory channels.`,
			Accessibility: `Pure narrative, no props; suitable for any audience familiar
with office work.`,
			Assessment: "None known.",
			Citations: []string{
				"H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching parallel computing to inexperienced programmers,\" ITiCSE-WGR 2006.",
			},
		},
		{
			Slug:          "microarchitecture-metaphors",
			Title:         "Microarchitecture Through Metaphors",
			Date:          "2014-06-01",
			CS2013:        []string{"PD_ParallelArchitecture"},
			CS2013Details: []string{"PA_5", "PA_6"},
			TCPP:          []string{"TCPP_Architecture"},
			TCPPDetails:   []string{"C_Pipelines", "K_FlynnTaxonomy", "C_CacheCoherence", "C_Streams", "K_HeterogeneousArch"},
			Courses:       []string{"Systems"},
			Senses:        []string{"visual"},
			Medium:        []string{"analogy", "board"},
			Author:        "Jinho Eum and Simha Sethumadhavan",
			Details: `A suite of drawn metaphors for processor internals: a restaurant
kitchen as a pipeline (stations pass dishes stage to stage), the walk-in
pantry versus the countertop as the memory hierarchy, duplicate countertop
ingredient bins that must be kept in sync as cache coherence, and a food
court of specialized stalls as heterogeneous and streaming units. Each
metaphor is sketched on the board before the technical diagram is shown, so
students attach vocabulary to a scene they already understand.

**Running it**: draw the kitchen once and keep re-annotating the same
sketch across lectures — a stalled dish is a pipeline bubble, a missing
ingredient sends a runner to the pantry (a miss), and two cooks editing
the same bin tag is an invalidation. Eum and Sethumadhavan report the
metaphors were most valuable on exams, where students reached for the
kitchen when the formal vocabulary failed them.`,
			Accessibility: `Board sketches carry the content; verbal descriptions of each
scene make the metaphors accessible to low-vision students.`,
			Assessment: "None known.",
			Citations: []string{
				"J. Eum and S. Sethumadhavan, \"Teaching microarchitecture through metaphors,\" Columbia University Tech Report CUCS-006-14, 2014.",
			},
		},
		{
			Slug:          "amdahl-chocolate-bar",
			Title:         "Amdahl's Chocolate Bar",
			Date:          "2008-06-01",
			CS2013:        []string{"PD_ParallelAlgorithms", "PD_ParallelPerformance"},
			CS2013Details: []string{"PAAP_3", "PAAP_5", "PP_2"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"C_AmdahlsLaw", "C_Speedup", "C_Efficiency"},
			Courses:       []string{"CS0", "CS1", "CS2", "DSA", "Systems"},
			Senses:        []string{"visual", "touch", "accessible"},
			Medium:        []string{"analogy", "food"},
			Author:        "Collected from the Supercomputing in Plain English workshop community",
			Details: `A chocolate bar stands in for a program: most squares are
"parallel work" that any number of helpers can eat simultaneously, but the
wrapper must be opened first and the wrapper is one square's worth of time
that only one person can do. Students compute total eating time for 1, 2, 4
and 8 helpers, tabulate speedup, and watch it flatten toward the 1/serial
bound however many helpers join. Varying the wrapper size (the serial
fraction) previews why real programs stop scaling.

**Running it**: a 4x8 bar with the wrapper counted as two squares of work
gives s = 1/17, so the class can compute the speedup ceiling (17x) and see
how absurdly many helpers it takes to approach it. Plot helpers against
measured eating time on the board; students watch the curve flatten live.
Follow-up question: which is the better buy, a faster wrapper-opener or
two more eaters? The answer depends on where you are on the curve — the
whole Amdahl lesson in one bite.`,
			Accessibility: `Works with a drawn grid when food is unsuitable; the tactile
version lets students physically partition squares. Judged generally
accessible.`,
			Assessment: "None known.",
			Citations: []string{
				"H. Neeman, H. Severini, and D. Wu, \"Supercomputing in plain english: Teaching cyberinfrastructure to computing novices,\" SIGCSE Bull., vol. 40, no. 2, 2008.",
			},
		},
		{
			Slug:          "orchestra-conductor",
			Title:         "The Orchestra Conductor (Scheduling)",
			Date:          "2012-05-01",
			CS2013:        []string{"PD_ParallelPerformance"},
			CS2013Details: []string{"PP_5"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"C_SchedulingAndMapping", "A_Synchronization"},
			Courses:       []string{"K_12", "Systems"},
			Senses:        []string{"sound"},
			Medium:        []string{"analogy", "instrument"},
			Author:        "Collected from classroom practice across the Web",
			Details: `An orchestra plays a piece only if every section starts its phrase
at the right moment: the conductor is the scheduler, the score is the
program, and each musician is a core with her own part. A classroom ensemble
of simple instruments (or clapping sections) first plays without a
conductor, drifting apart; then with one, re-synchronizing at each downbeat.
Students hear scheduling and synchronization rather than see them, and
discuss what happens when one musician (a slow core) lags the beat.

**Running it**: clapping sections work when no instruments are at hand:
assign each quarter of the room a different beat pattern and conduct.
Without the conductor the patterns drift within twenty seconds — a felt
experience of clock skew. Ask the lagging section what would help: a
faster player (clock speed), fewer notes (less work), or a simpler part
(better partitioning) — three performance fixes in one scene.`,
			Accessibility: `Primarily auditory, one of the few unplugged activities that
engages students through sound; deaf and hard-of-hearing students can follow
the conductor's visual beat instead.`,
			Assessment: "None known.",
			Citations: []string{
				"S. J. Matthews, \"PDCunplugged: A free repository of unplugged parallel distributed computing activities,\" IPDPSW 2020 (curation entry).",
			},
		},
	}
}
