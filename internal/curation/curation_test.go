package curation

import (
	"strings"
	"testing"

	"pdcunplugged/internal/cs2013"
	"pdcunplugged/internal/tcpp"
)

func TestCorpusSize(t *testing.T) {
	acts := Activities()
	if len(acts) != Size || Size != 38 {
		t.Fatalf("corpus has %d activities, want 38 (the paper's 'nearly forty')", len(acts))
	}
	seen := map[string]bool{}
	for _, a := range acts {
		if seen[a.Slug] {
			t.Errorf("duplicate slug %s", a.Slug)
		}
		seen[a.Slug] = true
	}
}

func TestAllActivitiesValidate(t *testing.T) {
	for _, a := range Activities() {
		for _, err := range a.Validate() {
			t.Error(err)
		}
	}
}

func TestRepositoryLoadsThroughPipeline(t *testing.T) {
	r, err := Repository()
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != Size {
		t.Fatalf("repository has %d activities", r.Len())
	}
}

// count returns how many activities list term in the named tag set.
func count(tax, term string) int {
	n := 0
	for _, a := range Activities() {
		for _, x := range a.Terms(tax) {
			if x == term {
				n++
				break
			}
		}
	}
	return n
}

func TestCourseCountsMatchSectionIIIA(t *testing.T) {
	// "there are 15 activities listed on PDCunplugged recommended for K-12,
	// 8 for CS0, 17 for CS1, 25 for CS2, 27 for DSA, and 22 for Systems".
	want := map[string]int{"K_12": 15, "CS0": 8, "CS1": 17, "CS2": 25, "DSA": 27, "Systems": 22}
	for course, n := range want {
		if got := count("courses", course); got != n {
			t.Errorf("%s: %d activities, paper says %d", course, got, n)
		}
	}
}

func TestExternalResourceRatio(t *testing.T) {
	// "Less than half (41%) of the materials have some sort of external
	// resource". 16/38 = 42.1% is the nearest attainable integer count;
	// see EXPERIMENTS.md.
	n := 0
	for _, a := range Activities() {
		if a.HasExternalResources() {
			n++
		}
	}
	if n != 16 {
		t.Errorf("%d activities with external resources, want 16", n)
	}
	if ratio := float64(n) / float64(Size); ratio >= 0.5 {
		t.Errorf("external-resource ratio %.2f not 'less than half'", ratio)
	}
}

func TestMediumCountsMatchSectionIIID(t *testing.T) {
	// "11 analogies and 11 role-playing activities, and 4 activities that
	// are labeled as games. Popular activity mediums include paper (8),
	// chalk-/white-board (6), and cards (6). Other activities involve ...
	// pens (4), coins (2), food (4) and musical instruments (1)."
	want := map[string]int{
		"analogy": 11, "role-play": 11, "game": 4, "paper": 8,
		"board": 6, "cards": 6, "pens": 4, "coins": 2, "food": 4, "instrument": 1,
	}
	for medium, n := range want {
		if got := count("medium", medium); got != n {
			t.Errorf("medium %s: %d activities, paper says %d", medium, got, n)
		}
	}
}

func TestSenseCountsMatchSectionIIID(t *testing.T) {
	// visual 71.05% = 27/38; touch 26.32% = 10/38; two sound activities;
	// 9 generally accessible; movement 14/38 = 36.84% (the paper prints
	// 38.84%, which is not k/38 for any integer k; see EXPERIMENTS.md).
	want := map[string]int{"visual": 27, "movement": 14, "touch": 10, "sound": 2, "accessible": 9}
	for sense, n := range want {
		if got := count("senses", sense); got != n {
			t.Errorf("sense %s: %d activities, paper says %d", sense, got, n)
		}
	}
}

// Table I expectations: unit -> {covered outcomes, total activities}.
var tableI = map[string][2]int{
	"PF":   {2, 2},
	"PD":   {5, 21},
	"PCC":  {6, 9},
	"PAAP": {6, 12},
	"PA":   {7, 9},
	"PP":   {6, 10},
	"DS":   {1, 2},
	"CC":   {1, 3},
	"FMS":  {1, 1},
}

func TestCS2013TagsMatchTableI(t *testing.T) {
	acts := Activities()
	for _, u := range cs2013.All() {
		want := tableI[u.Abbrev]
		if got := count("cs2013", u.Term); got != want[1] {
			t.Errorf("%s: %d tagged activities, Table I says %d", u.Name, got, want[1])
		}
		covered := map[int]bool{}
		for _, a := range acts {
			for _, det := range a.CS2013Details {
				du, o, err := cs2013.ParseDetail(det)
				if err == nil && du.Abbrev == u.Abbrev {
					covered[o.Num] = true
				}
			}
		}
		if len(covered) != want[0] {
			t.Errorf("%s: %d covered outcomes %v, Table I says %d", u.Name, len(covered), covered, want[0])
		}
	}
}

// Table II expectations: area -> {covered topics, total activities}.
var tableII = map[string][2]int{
	"Architecture":                     {10, 9},
	"Programming":                      {19, 24},
	"Algorithms":                       {13, 22},
	"Crosscutting and Advanced Topics": {7, 8},
}

func TestTCPPTagsMatchTableII(t *testing.T) {
	acts := Activities()
	for _, ar := range tcpp.All() {
		want := tableII[ar.Name]
		if got := count("tcpp", ar.Term); got != want[1] {
			t.Errorf("%s: %d tagged activities, Table II says %d", ar.Name, got, want[1])
		}
		covered := map[string]bool{}
		for _, a := range acts {
			for _, det := range a.TCPPDetails {
				da, tp, err := tcpp.FindTopic(det)
				if err == nil && da.Name == ar.Name {
					covered[tp.Key] = true
				}
			}
		}
		if len(covered) != want[0] {
			keys := make([]string, 0, len(covered))
			for k := range covered {
				keys = append(keys, k)
			}
			t.Errorf("%s: %d covered topics, Table II says %d (covered: %s)",
				ar.Name, len(covered), want[0], strings.Join(keys, ","))
		}
	}
}

func TestSectionIIIBSparseUnits(t *testing.T) {
	acts := Activities()
	// Cloud Computing: three activities (Lloyd's and Kolikant's), all
	// covering the same single outcome.
	ccDetails := map[string]bool{}
	for _, a := range acts {
		for _, det := range a.CS2013Details {
			if strings.HasPrefix(det, "CC_") {
				ccDetails[det] = true
			}
		}
	}
	if len(ccDetails) != 1 {
		t.Errorf("cloud computing outcomes covered = %v, want exactly one", ccDetails)
	}
	// Distributed Systems: two activities covering the same outcome.
	dsDetails := map[string]bool{}
	dsActs := 0
	for _, a := range acts {
		hit := false
		for _, det := range a.CS2013Details {
			if strings.HasPrefix(det, "DS_") {
				dsDetails[det] = true
				hit = true
			}
		}
		if hit {
			dsActs++
		}
	}
	if len(dsDetails) != 1 || dsActs != 2 {
		t.Errorf("distributed systems: %d outcomes %v across %d activities, want 1 outcome in 2 activities", len(dsDetails), dsDetails, dsActs)
	}
}

func TestSectionIIICSubcategoryCoverage(t *testing.T) {
	acts := Activities()
	coveredIn := func(area, sub string) int {
		ar, ok := tcpp.ByName(area)
		if !ok {
			t.Fatalf("unknown area %s", area)
		}
		covered := map[string]bool{}
		for _, a := range acts {
			for _, det := range a.TCPPDetails {
				da, tp, err := tcpp.FindTopic(det)
				if err == nil && da.Name == ar.Name && tp.Subcategory == sub {
					covered[tp.Key] = true
				}
			}
		}
		return len(covered)
	}
	// "the Floating-point Representation and Performance Metric categories
	// have no corresponding unplugged activities"
	if got := coveredIn("Architecture", tcpp.SubFloatingPoint); got != 0 {
		t.Errorf("Floating-Point coverage = %d, want 0", got)
	}
	if got := coveredIn("Architecture", tcpp.SubPerfMetrics); got != 0 {
		t.Errorf("Performance Metrics coverage = %d, want 0", got)
	}
	// "the PD Models/Complexity topics have the lowest coverage at 36.36%"
	// = 4/11.
	if got := coveredIn("Algorithms", tcpp.SubModelsComplexity); got != 4 {
		t.Errorf("PD Models/Complexity covered = %d, want 4 (36.36%%)", got)
	}
	// "The Paradigms and Notations category has the lowest level of
	// coverage (35.71%)" = 5/14.
	if got := coveredIn("Programming", tcpp.SubParadigmsNotations); got != 5 {
		t.Errorf("Paradigms and Notations covered = %d, want 5 (35.71%%)", got)
	}
}

func TestCrosscuttingGapsUncovered(t *testing.T) {
	// "we were unable to identify any unplugged activities that explain how
	// web-searches or peer-to-peer computing work, or that discuss
	// cloud/grid computing or the concept of locality ... [or] the 'know
	// why and what is parallel/distributed computing' PDC topic."
	acts := Activities()
	covered := map[string]bool{}
	for _, a := range acts {
		for _, det := range a.TCPPDetails {
			_, tp, err := tcpp.FindTopic(det)
			if err == nil {
				covered[tp.Key] = true
			}
		}
	}
	for _, gap := range []string{"WebSearch", "PeerToPeer", "CloudGrid", "Locality", "WhyPDC"} {
		if covered[gap] {
			t.Errorf("gap topic %s unexpectedly covered", gap)
		}
	}
}

func TestEveryActivityHasSubstance(t *testing.T) {
	for _, a := range Activities() {
		if len(a.Details) < 100 {
			t.Errorf("%s: details too thin (%d bytes)", a.Slug, len(a.Details))
		}
		if len(a.Citations) == 0 {
			t.Errorf("%s: no citations", a.Slug)
		}
		if a.Accessibility == "" {
			t.Errorf("%s: no accessibility note", a.Slug)
		}
		if a.Assessment == "" {
			t.Errorf("%s: assessment section empty (use 'None known.')", a.Slug)
		}
		if len(a.CS2013) == 0 || len(a.TCPP) == 0 {
			t.Errorf("%s: missing curricular tags", a.Slug)
		}
		if len(a.Courses) == 0 || len(a.Medium) == 0 {
			t.Errorf("%s: missing courses or medium", a.Slug)
		}
	}
}

func TestDetailsCarryInstructorGuidance(t *testing.T) {
	// The paper: "The Details section often takes the majority of the work
	// in creating an activity." Every entry must describe the mechanics in
	// depth, and a substantial share must carry explicit facilitation
	// guidance (the Running it / Extending it paragraphs).
	guided := 0
	for _, a := range Activities() {
		if len(a.Details) < 200 {
			t.Errorf("%s: details too thin for adoption (%d bytes)", a.Slug, len(a.Details))
		}
		if strings.Contains(a.Details, "**Running it**") || strings.Contains(a.Details, "**Extending it**") {
			guided++
		}
	}
	if guided < 18 {
		t.Errorf("only %d activities carry facilitation guidance, want >= 18", guided)
	}
}

func TestAssessedActivitiesMatchPaper(t *testing.T) {
	// The paper names the recently assessed efforts: Ghafoor et al. (iPDC,
	// [14]), Chitra and Ghafoor ([9]), Smith and Srivastava ([25][26]),
	// Lewandowski et al. (concert tickets), and the Sivilotti-Demirbas
	// workshop (odd-even).
	wantAssessed := map[string]bool{
		"ipdc-array-addition":              true,
		"ipdc-card-search":                 true,
		"graduate-jigsaw-teams":            true,
		"faster-answer-vs-shared-resource": true,
		"concert-tickets":                  true,
		"oddeven-transposition":            true,
	}
	for _, a := range Activities() {
		if a.HasAssessment() != wantAssessed[a.Slug] {
			t.Errorf("%s: HasAssessment = %v, want %v", a.Slug, a.HasAssessment(), wantAssessed[a.Slug])
		}
	}
}

func TestActivitiesReturnsCopies(t *testing.T) {
	a := Activities()
	a[0].CS2013[0] = "MUTATED"
	a[0].Title = "MUTATED"
	b := Activities()
	if b[0].CS2013[0] == "MUTATED" || b[0].Title == "MUTATED" {
		t.Error("Activities() exposes shared state")
	}
}

func TestFilesRenderAndReparse(t *testing.T) {
	files := Files()
	if len(files) != Size {
		t.Fatalf("Files() = %d entries", len(files))
	}
	for slug, content := range files {
		if !strings.HasPrefix(content, "---\n") {
			t.Errorf("%s: missing front matter", slug)
		}
		if !strings.Contains(content, "## Original Author/link") {
			t.Errorf("%s: missing author section", slug)
		}
	}
}
