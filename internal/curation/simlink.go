package curation

// simulations maps curated activity slugs to the registered dramatization
// (internal/sim/activities) that rehearses them. Analogies that share one
// underlying model map to the same simulation (jigsaw-puzzle and
// desert-islands are the two halves of the sharedmem cost model). Entries
// absent here are discussion scenarios with no algorithmic execution to
// simulate.
var simulations = map[string]string{
	"findsmallestcard":                 "findsmallestcard",
	"cardsort-parallel":                "cardsort",
	"oddeven-transposition":            "oddeven",
	"parallel-radixsort":               "radixsort",
	"human-sorting-network":            "oddeven",
	"ipdc-sorting-network":             "oddeven",
	"ipdc-card-search":                 "findsmallestcard",
	"ipdc-array-addition":              "scan",
	"ipdc-matrix-decomposition":        "sharedmem",
	"juice-sweetening-race":            "juicerace",
	"race-condition-analogy":           "juicerace",
	"concert-tickets":                  "concerttickets",
	"gardeners":                        "gardeners",
	"selfstabilizing-token-ring":       "tokenring",
	"stable-leader-election":           "leaderelection",
	"parallel-garbage-collection":      "gcmark",
	"nondeterministic-sort":            "nondetsort",
	"byzantine-generals":               "byzantine",
	"load-balancing-analogy":           "loadbalance",
	"graduate-jigsaw-teams":            "gardeners",
	"jigsaw-puzzle":                    "sharedmem",
	"desert-islands":                   "sharedmem",
	"resource-contention-analogy":      "sharedmem",
	"long-distance-phone-call":         "phonecall",
	"amdahl-chocolate-bar":             "amdahl",
	"giacaman-analogy-suite":           "amdahl",
	"bogaerts-cs1-analogies":           "cardsort",
	"assembly-line-pipeline":           "pipeline",
	"ipdc-pipeline-laundry":            "pipeline",
	"orchestra-conductor":              "barrier",
	"orange-game":                      "collectives",
	"acting-out-algorithms":            "oddeven",
	"game-playing-parallel":            "simdgame",
	"pbj-task-graph":                   "recursiontree",
	"faster-answer-vs-shared-resource": "concerttickets",
	"synchronization-comparison":       "barrier",
	"microarchitecture-metaphors":      "pipeline",
	"object-oriented-role-play":        "leaderelection",
}

// SimulationFor returns the registered dramatization rehearsing the given
// curated activity (ok is false for pure discussion scenarios).
func SimulationFor(slug string) (string, bool) {
	name, ok := simulations[slug]
	return name, ok
}

// SimulatedSlugs returns the curated slugs that have a dramatization.
func SimulatedSlugs() []string {
	out := make([]string, 0, len(simulations))
	for slug := range simulations {
		out = append(out, slug)
	}
	return out
}
