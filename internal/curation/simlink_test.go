package curation

import (
	"testing"

	"pdcunplugged/internal/sim"
	_ "pdcunplugged/internal/sim/activities"
)

func TestSimulationLinksResolveBothWays(t *testing.T) {
	slugs := map[string]bool{}
	for _, a := range Activities() {
		slugs[a.Slug] = true
	}
	for _, slug := range SimulatedSlugs() {
		if !slugs[slug] {
			t.Errorf("simulation link for unknown activity %q", slug)
		}
		name, ok := SimulationFor(slug)
		if !ok {
			t.Fatalf("SimulationFor(%s) inconsistent", slug)
		}
		if _, registered := sim.Get(name); !registered {
			t.Errorf("%s links to unregistered simulation %q", slug, name)
		}
	}
	if _, ok := SimulationFor("no-such-activity"); ok {
		t.Error("SimulationFor accepted unknown slug")
	}
}

func TestEveryActivityHasASimulationWhereSensible(t *testing.T) {
	// All 38 curated activities map to a dramatization: every family the
	// paper describes executes. (If a future curated activity is a pure
	// discussion scenario, exempt it here explicitly.)
	for _, a := range Activities() {
		if _, ok := SimulationFor(a.Slug); !ok {
			t.Errorf("%s has no linked dramatization", a.Slug)
		}
	}
}

func TestLinkedSimulationsRunGreen(t *testing.T) {
	ran := map[string]bool{}
	for _, slug := range SimulatedSlugs() {
		name, _ := SimulationFor(slug)
		if ran[name] {
			continue
		}
		ran[name] = true
		rep, err := sim.Run(name, sim.Config{Seed: 21})
		if err != nil || !rep.OK {
			t.Errorf("%s -> %s: %v %v", slug, name, err, rep)
		}
	}
}
