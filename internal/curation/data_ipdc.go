package curation

import "pdcunplugged/internal/activity"

// ipdcActivities returns the assessed activities from the Tennessee Tech
// iPDC modules (Ghafoor, Brown, Rogers, Hines) and the related graduate
// active-learning activity (Chitra and Ghafoor).
func ipdcActivities() []activity.Activity {
	const ipdcSite = "https://csc.tntech.edu/pdcincs/index.php/ipdc-modules/"
	return []activity.Activity{
		{
			Slug:          "ipdc-array-addition",
			Title:         "iPDC: Parallel Array Addition",
			Date:          "2019-07-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_2", "PD_5", "PAAP_4"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"C_TimeCost", "C_DataParallelNotation", "C_Speedup"},
			Courses:       []string{"CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "touch", "accessible"},
			Medium:        []string{"paper", "pens"},
			Author:        "Sheikh Ghafoor, David Brown, Mike Rogers and Thomas Hines",
			Links:         []string{ipdcSite},
			Details: `Students receive worksheets with a long row of numbers to total.
One student adds the whole row alone while groups split the same row into
equal chunks, total their chunks simultaneously, and combine partial sums.
Groups time both runs, compute speedup, and notice the combining step is
extra work that a lone adder never pays: the first quantitative encounter
with overhead. The worksheet then asks which chunk assignment is fair when
some numbers are multi-digit, previewing data decomposition choices.

**Running it**: print rows of 60-80 single-digit numbers so a solo run
takes about two minutes and a four-student run visibly beats it even with
the combining step. Have groups record three times — solo, split, and
split-plus-combine — so the overhead term appears as its own number rather
than being lost in the total. The worksheet's closing question asks
students to predict the time for eight helpers before re-running, which
surfaces the diminishing-returns intuition the later Amdahl material
formalizes.`,
			Accessibility: `A seated pencil-and-paper exercise; large-print worksheets
extend access. Judged generally accessible.`,
			Assessment: `Evaluated in CS1 and CS2 at Tennessee Tech; preliminary results
suggested the unplugged treatment aided understanding of decomposition and
speedup (Ghafoor et al. 2019).`,
			Citations: []string{
				"S. K. Ghafoor, D. W. Brown, M. Rogers, and T. Hines, \"Unplugged activities to introduce parallel computing in introductory programming classes: An experience report,\" ITiCSE 2019.",
				"S. K. Ghafoor, M. Rogers, D. Brown, and A. Haynes, \"iPDC modules (unplugged),\" course materials site.",
			},
		},
		{
			Slug:          "ipdc-card-search",
			Title:         "iPDC: Parallel Card Search",
			Date:          "2019-07-01",
			CS2013:        []string{"PD_ParallelDecomposition"},
			CS2013Details: []string{"PD_5"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"A_ParallelSearch", "C_ParallelSelection"},
			Courses:       []string{"K_12", "CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "touch"},
			Medium:        []string{"game", "cards"},
			Author:        "Sheikh Ghafoor, David Brown, Mike Rogers and Thomas Hines",
			Links:         []string{ipdcSite},
			Details: `A target card hides in a large shuffled spread laid face down on
desks. One seeker flips cards alone; then a team partitions the spread and
seeks simultaneously, shouting when the target appears. Teams chart seek
time against team size, observing near-linear speedup for this pleasantly
parallel search, and then repeat with the target absent to see that
worst-case work does not shrink, only wall-clock time. Run as a race between
teams, the activity doubles as a game.`,
			Accessibility: `Cards on reachable desk areas; flipping can be delegated to a
partner for students with limited dexterity.`,
			Assessment: `Listed with the assessed iPDC module set evaluated in
introductory courses at Tennessee Tech (Ghafoor et al. 2019).`,
			Citations: []string{
				"S. K. Ghafoor, D. W. Brown, M. Rogers, and T. Hines, \"Unplugged activities to introduce parallel computing in introductory programming classes: An experience report,\" ITiCSE 2019.",
				"S. K. Ghafoor, M. Rogers, D. Brown, and A. Haynes, \"iPDC modules (unplugged),\" course materials site.",
			},
		},
		{
			Slug:          "ipdc-sorting-network",
			Title:         "iPDC: Desktop Sorting Network",
			Date:          "2019-07-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_3", "PAAP_4"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"A_ParallelSorting"},
			Courses:       []string{"K_12", "CS2", "DSA"},
			Senses:        []string{"visual", "touch"},
			Medium:        []string{"cards"},
			Author:        "Sheikh Ghafoor, Mike Rogers, David Brown and Austin Haynes",
			Links:         []string{ipdcSite},
			Details: `A printed comparator network sits on each desk; students slide
numbered cards along the lanes, resolving every comparator at the same depth
simultaneously before advancing. Because the comparison schedule is fixed in
advance, students verify the network sorts every permutation they try and
count depth (parallel steps) separately from size (total comparators),
meeting the work/time distinction in a purely tabletop form.`,
			Accessibility: `Entirely desk-based with sliding cards; no movement around the
room required.`,
			Assessment: "None known.",
			Citations: []string{
				"S. K. Ghafoor, M. Rogers, D. Brown, and A. Haynes, \"iPDC modules (unplugged),\" course materials site.",
			},
		},
		{
			Slug:          "ipdc-pipeline-laundry",
			Title:         "iPDC: Laundry Pipeline",
			Date:          "2019-07-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelPerformance"},
			CS2013Details: []string{"PD_4", "PP_5"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"C_PipelineParadigm", "A_TasksAndThreads", "C_Speedup"},
			Courses:       []string{"CS1", "CS2", "DSA"},
			Senses:        []string{"visual"},
			Medium:        []string{"paper"},
			Author:        "Sheikh Ghafoor, Mike Rogers, David Brown and Austin Haynes",
			Links:         []string{ipdcSite},
			Details: `Loads of laundry flow through washer, dryer and folding table on a
paper timeline. Students first schedule four loads through one stage at a
time, then overlap them so the washer starts load two while load one dries,
filling in a pipeline diagram. They compute throughput once the pipeline
fills, identify the slowest stage as the bottleneck, and predict the effect
of buying a second dryer: stage balancing without any code.`,
			Accessibility: `A worksheet exercise; the timeline grid suits screen readers
poorly, so a verbal walk-through variant is suggested.`,
			Assessment: "None known.",
			Citations: []string{
				"S. K. Ghafoor, M. Rogers, D. Brown, and A. Haynes, \"iPDC modules (unplugged),\" course materials site.",
			},
		},
		{
			Slug:          "ipdc-matrix-decomposition",
			Title:         "iPDC: Matrix Row Decomposition",
			Date:          "2019-07-01",
			CS2013:        []string{"PD_ParallelDecomposition"},
			CS2013Details: []string{"PD_5"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"K_SpacePowerTradeoffs", "C_DataParallelNotation", "C_DataDistribution"},
			Courses:       []string{"CS2", "DSA"},
			Senses:        []string{"visual"},
			Medium:        []string{"paper"},
			Author:        "Sheikh Ghafoor, Mike Rogers, David Brown and Austin Haynes",
			Links:         []string{ipdcSite},
			Details: `Groups scale a paper matrix by a constant, with each member owning
a band of rows. Row bands finish independently; then the worksheet switches
to an operation needing neighbors' rows (a stencil-style smoothing), and
suddenly members must copy values across the group boundary. Students
compare the copying cost of row, column and block distributions and discuss
the memory each member must hold, trading replicated storage against
communication.`,
			Accessibility: `Seated worksheet activity; color-coded bands aid students in
tracking ownership.`,
			Assessment: "None known.",
			Citations: []string{
				"S. K. Ghafoor, M. Rogers, D. Brown, and A. Haynes, \"iPDC modules (unplugged),\" course materials site.",
			},
		},
		{
			Slug:          "graduate-jigsaw-teams",
			Title:         "Graduate Jigsaw Teams for PDC",
			Date:          "2019-05-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelPerformance"},
			CS2013Details: []string{"PD_4", "PP_1", "PP_7"},
			TCPP:          []string{"TCPP_Programming", "TCPP_Crosscutting"},
			TCPPDetails:   []string{"A_LoadBalancing", "C_Efficiency", "K_PowerConsumption"},
			Courses:       []string{"DSA", "Systems", "Graduate"},
			Senses:        []string{"touch"},
			Medium:        []string{"objects"},
			Author:        "P. Chitra and Sheikh Ghafoor",
			Details: `Part of an active-learning redesign of a graduate PDC course in
India: teams assemble physical jigsaw sets under changing constraints; a
fixed piece split per member, then a shared pile with work stealing. Teams
log idle time per member as a load-imbalance measure and compare energy
spent (total member-minutes) against elapsed time, connecting the trade
between running many slow workers and few fast ones to power-aware
scheduling discussions later in the course.`,
			Accessibility: `Table-based manipulation of pieces; piece sizes can be chosen
for students with limited fine motor control.`,
			Assessment: `Students taught with the activity-based methodology earned higher
grades than a lecture-format comparison section (Chitra and Ghafoor 2019).`,
			Citations: []string{
				"P. Chitra and S. K. Ghafoor, \"Activity based approach for teaching parallel computing: An indian experience,\" IPDPSW 2019.",
			},
		},
	}
}
