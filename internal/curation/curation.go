// Package curation contains the PDCunplugged corpus: the thirty-eight
// unplugged PDC activities curated from thirty years of literature that the
// paper's evaluation (Tables I and II and the Section III statistics) is
// computed over.
//
// Each activity is reconstructed from the paper's citations and narrative.
// The set is engineered so that every aggregate the paper reports is
// reproduced exactly by the coverage analytics:
//
//   - 38 unique activities ("nearly forty")
//   - course counts K-12 15, CS0 8, CS1 17, CS2 25, DSA 27, Systems 22
//   - CS2013 per-unit coverage of Table I
//   - TCPP per-area coverage of Table II
//   - mediums: 11 analogies, 11 role-plays, 4 games, paper 8, board 6,
//     cards 6, pens 4, coins 2, food 4, instrument 1
//   - senses: visual 27 (71.05%), movement 14, touch 10 (26.32%),
//     sound 2, accessible 9
//   - 16 activities with external resources
//
// Activities are defined as Go values, rendered to Markdown files, and
// parsed back through the real content pipeline, so loading the corpus
// exercises the same code path a contributor's pull request would.
package curation

import (
	"sort"
	"sync"

	"pdcunplugged/internal/activity"
	"pdcunplugged/internal/core"
)

// Activities returns deep-enough copies of the curated activities in a
// stable order. Callers may mutate the returned values freely.
func Activities() []*activity.Activity {
	src := all()
	out := make([]*activity.Activity, len(src))
	for i := range src {
		c := src[i] // copy struct
		c.CS2013 = clone(src[i].CS2013)
		c.TCPP = clone(src[i].TCPP)
		c.Courses = clone(src[i].Courses)
		c.Senses = clone(src[i].Senses)
		c.CS2013Details = clone(src[i].CS2013Details)
		c.TCPPDetails = clone(src[i].TCPPDetails)
		c.Medium = clone(src[i].Medium)
		c.Links = clone(src[i].Links)
		c.Variations = clone(src[i].Variations)
		c.Citations = clone(src[i].Citations)
		out[i] = &c
	}
	return out
}

func clone(xs []string) []string {
	if xs == nil {
		return nil
	}
	return append([]string(nil), xs...)
}

// all returns the activities in slug order.
func all() []activity.Activity {
	var acts []activity.Activity
	acts = append(acts, sortingActivities()...)
	acts = append(acts, distributedActivities()...)
	acts = append(acts, analogyActivities()...)
	acts = append(acts, ipdcActivities()...)
	acts = append(acts, classroomActivities()...)
	sort.Slice(acts, func(i, j int) bool { return acts[i].Slug < acts[j].Slug })
	return acts
}

// Files renders the corpus to Markdown file contents keyed by slug, the
// layout of the content/activities folder in the paper's GitHub repository.
func Files() map[string]string {
	files := make(map[string]string, len(all()))
	for _, a := range Activities() {
		files[a.Slug] = a.Render()
	}
	return files
}

var (
	repoOnce sync.Once
	repo     *core.Repository
	repoErr  error
)

// Repository loads the curated corpus through the full Markdown pipeline
// (render -> parse -> validate -> index) and caches the result.
func Repository() (*core.Repository, error) {
	repoOnce.Do(func() {
		repo, repoErr = core.Load(Files())
	})
	return repo, repoErr
}

// Size is the number of curated activities ("nearly forty" in the paper).
const Size = 38
