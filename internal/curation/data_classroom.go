package curation

import "pdcunplugged/internal/activity"

// classroomActivities returns the remaining classroom interventions: games,
// dramatizations and analogy suites developed for specific courses.
func classroomActivities() []activity.Activity {
	return []activity.Activity{
		{
			Slug:          "game-playing-parallel",
			Title:         "Game Playing as Parallel Computing",
			Date:          "1992-09-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PD_4", "PA_3", "PA_5"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Algorithms"},
			TCPPDetails:   []string{"C_SIMD", "K_FlynnTaxonomy", "K_DataVsControlParallelism", "A_ParallelSearch"},
			Courses:       []string{"K_12", "CS2", "DSA"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"game", "board"},
			Author:        "Andrew Kitchen, Nan Schaller and Paul Tymann",
			Details: `Classroom games dramatize machine classes: in the SIMD game one
caller broadcasts an instruction ("everyone holding a card larger than your
left neighbor, swap!") that all players execute in lockstep, while the MIMD
game lets teams pursue sub-goals of a board-game search independently and
combine results. Students experience the difference between one control
stream driving many data items and many independent control streams, and
map each game onto Flynn's taxonomy afterwards.

**Running it**: the SIMD game's power is the caller's *inability* to
branch per student — when a broadcast instruction makes no sense for a
particular card, that student simply idles, which is exactly divergence
masking. Let a student take the caller role and feel how restrictive one
control stream is; then let teams loose on the MIMD search and compare the
noise level. The contrast in classroom volume is the contrast in
architectures.`,
			Accessibility: `Game roles involve standing and swapping; a fully seated
variant uses desk-passed cards.`,
			Assessment: "None known.",
			Citations: []string{
				"A. T. Kitchen, N. C. Schaller, and P. T. Tymann, \"Game playing as a technique for teaching parallel computing concepts,\" SIGCSE Bull., vol. 24, no. 3, pp. 35-38, 1992.",
				"G. F. Bachelis, B. R. Maxim, D. A. James, and Q. F. Stout, \"Bringing algorithms to life,\" School Science and Mathematics, 1994.",
			},
		},
		{
			Slug:          "synchronization-comparison",
			Title:         "Comparing Synchronization Methods",
			Date:          "2010-03-01",
			CS2013:        []string{"PD_CommunicationAndCoordination", "PD_ParallelismFundamentals"},
			CS2013Details: []string{"PCC_1", "PF_2"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"A_Synchronization", "A_MutualExclusion", "A_CriticalRegions", "K_Deadlocks"},
			Courses:       []string{"K_12", "CS2", "DSA", "Systems"},
			Senses:        []string{"visual"},
			Medium:        []string{"paper"},
			Author:        "Robert Chesebrough and Ivan Turner",
			Details: `Developed at the interface of high school and industry: student
pairs must update a shared tally sheet correctly under three different
disciplines in turn: a talking-stick lock, a sign-up sheet (queueing
semaphore), and splitting the sheet so no sharing occurs. Groups record
which discipline was fastest, which risked deadlock when two sheets were
needed, and which simply removed the conflict. This is the only curated
activity that explicitly compares multiple synchronization constructs
rather than presenting one.

**Running it**: keep the tally task identical across all three rounds
so timing differences are attributable to the discipline alone; a
wall-clock scribe records each round. The deadlock probe works best
staged: introduce a second shared sheet mid-round and watch two pairs
each holding one sheet wait for the other. Debrief on which discipline
failed (the lock), which survived (the split), and what that cost.`,
			Accessibility: `Paper-based with minimal movement. External materials referenced
in the original paper are no longer reachable (links de-activated).`,
			Assessment: "None known.",
			Citations: []string{
				"R. A. Chesebrough and I. Turner, \"Parallel computing: At the interface of high school and industry,\" SIGCSE 2010.",
			},
		},
		{
			Slug:          "faster-answer-vs-shared-resource",
			Title:         "Faster Answer vs. Shared Resource",
			Date:          "2019-02-01",
			CS2013:        []string{"PD_ParallelismFundamentals"},
			CS2013Details: []string{"PF_1"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"C_Speedup", "A_MutualExclusion"},
			Courses:       []string{"CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "accessible"},
			Medium:        []string{"paper"},
			Author:        "Melissa Smith and Srishti Srivastava",
			Details: `A paired worksheet poses two superficially similar situations:
four friends grade a stack of exams together (parallelism: using more
resources for a faster answer) and four roommates share one bathroom each
morning (concurrency: managing efficient access to a shared resource).
Students classify a dozen further scenarios as one, the other, or both, and
articulate the distinction in their own words. This is the only curated
activity that directly targets the distinguish-parallelism-from-concurrency
learning outcome.

**Running it**: the classification list works best when some scenarios are
genuinely both (a restaurant kitchen: more cooks for throughput *and* one
oven to share), forcing the class past a binary sort into articulating the
two concerns separately. Collect the worksheets: disagreement rates per
scenario are themselves an assessment signal, and the original study used
exactly this instrument across multiple sections.`,
			Accessibility: `Worksheet discussion; no props or movement. Judged generally
accessible.`,
			Assessment: `Student engagement and concept retention were assessed across
early undergraduate courses as part of an NSF-funded integration study
(Smith and Srivastava 2019; Srivastava et al. 2019).`,
			Citations: []string{
				"M. Smith and S. Srivastava, \"Evaluating student engagement towards integrating parallel and distributed computing (pdc) topics in undergraduate level computer science curriculum,\" SIGCSE 2019.",
				"S. Srivastava, M. Smith, A. Ghimire, and S. Gao, \"Assessing the integration of parallel and distributed computing in early undergraduate computer science curriculum using unplugged activities,\" EduHPC 2019.",
			},
		},
		{
			Slug:          "giacaman-analogy-suite",
			Title:         "Giacaman's Parallel Computing Analogies",
			Date:          "2012-05-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelPerformance", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PD_2", "PP_2", "PA_1", "PA_7"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Programming"},
			TCPPDetails:   []string{"K_Multicore", "C_SharedVsDistributedMemory", "C_SharedMemoryModel", "A_TasksAndThreads", "C_AmdahlsLaw"},
			Courses:       []string{"CS1", "CS2", "DSA", "Systems"},
			Senses:        []string{"visual", "accessible"},
			Medium:        []string{"analogy"},
			Author:        "Nasser Giacaman",
			Links:         []string{"https://doi.org/10.1109/IPDPSW.2012.158"},
			Details: `A suite of everyday analogies woven through a sophomore course and
paired with live coding: employees sharing one office whiteboard (threads
over shared memory and why two writers collide), hiring more chefs for one
kitchen (diminishing returns and Amdahl's law), and one multicore office
building versus branch offices (shared versus distributed organization).
Each analogy is introduced before its code demonstration so students carry a
concrete scene into the technical material.

**Running it**: Giacaman pairs every analogy with a live-coded
demonstration in the same lecture, and the ordering matters: scene first,
code second, then explicit mapping ("the whiteboard is this shared list;
the employees are these threads"). Reusing one scene across weeks beats
introducing a new analogy per concept — students anchor to few, deep
scenes.`,
			Accessibility: `Entirely verbal/slide-based; works in large lectures. Judged
generally accessible.`,
			Assessment: "None known.",
			Citations: []string{
				"N. Giacaman, \"Teaching by example: Using analogies and live coding demonstrations to teach parallel computing concepts to undergraduate students,\" IPDPSW 2012.",
			},
		},
		{
			Slug:          "bogaerts-cs1-analogies",
			Title:         "Bogaerts' CS1 Parallelism Analogies",
			Date:          "2014-05-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_2", "PAAP_3", "PAAP_5"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"C_DivideAndConquer", "C_TimeCost", "C_Speedup", "A_TasksAndThreads", "C_DataParallelNotation"},
			Courses:       []string{"CS1", "DSA"},
			Senses:        []string{"visual"},
			Medium:        []string{"analogy"},
			Author:        "Steven Bogaerts",
			Details: `"One step at a time" analogies sized for limited CS1 schedule
room: grading a pile of exams with helpers (data decomposition), a grocery
store opening more checkout lanes (task throughput versus per-customer
latency), and recursive halving of a phone-book search shared between two
people (divide and conquer). Each analogy comes with discussion questions
about when adding helpers stops paying off, preparing a later one-lecture
threading introduction.

**Running it**: designed for instructors with one spare lecture, not a
course redesign: each analogy is a five-minute opener for an otherwise
unchanged class. Bogaerts' longitudinal report suggests the payoff comes
later — students who met the analogies in CS1 reached for them unprompted
in the data structures course when asked to parallelize a loop.`,
			Accessibility: `Discussion-based; no materials beyond slides.`,
			Assessment:    "None known.",
			Citations: []string{
				"S. A. Bogaerts, \"Limited time and experience: Parallelism in cs1,\" IPDPSW 2014.",
				"S. A. Bogaerts, \"One step at a time: Parallelism in an introductory programming course,\" JPDC, vol. 105, pp. 4-17, 2017.",
			},
		},
		{
			Slug:          "acting-out-algorithms",
			Title:         "Acting Out Algorithms",
			Date:          "1997-11-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms"},
			CS2013Details: []string{"PD_2", "PAAP_4"},
			TCPP:          []string{"TCPP_Algorithms", "TCPP_Programming"},
			TCPPDetails:   []string{"A_ParallelSorting", "C_SPMD", "A_Synchronization"},
			Courses:       []string{"CS1", "CS2", "DSA"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"role-play", "pens"},
			Author:        "Ann Fleury",
			Details: `Students become processors executing the same written script on
their own data (pens, index cards), acting out algorithms in front of the
class. For parallel units, the script includes wait-for-neighbor steps so
the class physically feels synchronization stalls. Fleury's experience
report argues the dramatization works because students debug the script's
ambiguities with their bodies before ever writing code, catching
underspecified steps an instructor's pseudocode glosses over.

**Running it**: give the performers a deliberately ambiguous script on
the first pass ("compare with your neighbor" — which neighbor?) and let
the dramatization stall; the class then repairs the script, which is the
lesson: parallel pseudocode must specify who, with whom, and when. Fleury
notes the repaired scripts translate almost line-for-line into code.`,
			Accessibility: `Performance-style activity; roles can be narrated rather than
walked for students who prefer not to perform.`,
			Assessment: "None known.",
			Citations: []string{
				"A. Fleury, \"Acting out algorithms: how and why it works,\" The Journal of Computing in Small Colleges, vol. 13, no. 2, pp. 83-90, 1997.",
			},
		},
		{
			Slug:          "object-oriented-role-play",
			Title:         "Role Playing Message Passing",
			Date:          "2002-02-01",
			CS2013:        []string{"PD_CommunicationAndCoordination"},
			CS2013Details: []string{"PCC_11"},
			TCPP:          []string{"TCPP_Programming"},
			TCPPDetails:   []string{"C_ClientServer"},
			Courses:       []string{"CS1"},
			Senses:        []string{"movement"},
			Medium:        []string{"role-play"},
			Author:        "Steven Andrianoff and David Levine",
			Details: `Students play objects that communicate only by sending messages:
a requester walks a written method call to a receiver, waits while the
receiver computes (possibly dispatching its own sub-requests), and carries
the return value back. Used for object-orientation, the dramatization maps
directly onto remote procedure call in a client-server setting: the walk is
network latency, the wait is blocking, and two simultaneous requesters at
one receiver surface the need for a service queue. External materials cited
in the original paper have since been de-activated.

**Running it**: the blocking wait is the teachable moment — the
requester must stand idle at the receiver's desk until the return value
comes back. After one round, let requesters leave a callback note instead
and continue working; the room discovers asynchronous invocation because
standing still is boring. Two requesters colliding at one receiver
motivates queueing without any prompting.`,
			Accessibility: `Walking roles are swappable with note passing along desks.`,
			Assessment:    "None known.",
			Citations: []string{
				"S. K. Andrianoff and D. B. Levine, \"Role playing in an object-oriented world,\" SIGCSE 2002.",
			},
		},
		{
			Slug:          "assembly-line-pipeline",
			Title:         "The Assembly Line (Pipelining)",
			Date:          "2000-03-01",
			CS2013:        []string{"PD_ParallelDecomposition", "PD_ParallelAlgorithms", "PD_ParallelArchitecture"},
			CS2013Details: []string{"PD_4", "PAAP_8", "PAAP_9", "PA_5"},
			TCPP:          []string{"TCPP_Architecture", "TCPP_Algorithms"},
			TCPPDetails:   []string{"C_Pipelines", "K_MIMD", "C_PipelineParadigm", "C_TaskGraphs"},
			Courses:       []string{"CS2", "DSA", "Systems"},
			Senses:        []string{"visual", "movement"},
			Medium:        []string{"role-play", "board"},
			Author:        "Michelle Moore",
			Details: `Students staff a paper-airplane assembly line on the board's task
chart: folder, decorator, inspector, launcher. One artisan building planes
start-to-finish races the four-stage line; the line wins on throughput once
full, but the first plane takes just as long (latency), and a slow
decorator stalls everyone upstream (a producer-consumer bottleneck).
Swapping in a second decorator introduces stage replication, and the class
redraws the task graph to match.

**Running it**: real paper airplanes keep stakes high (the launcher
tests every plane). Time three configurations: one artisan, the four-stage
line, and the line with a doubled bottleneck stage. Plot all three on the
board; the line beats the artisan only after the fill, and doubling the
slow stage beats everything — throughput, latency and bottlenecks in
fifteen minutes of folding.`,
			Accessibility: `Stations can be arranged along one table for seated
participation; roles without fine motor demands (inspector, timer) are
available.`,
			Assessment: "None known.",
			Citations: []string{
				"M. Moore, \"Introducing parallel processing concepts,\" J. Comput. Sci. Coll., vol. 15, no. 3, pp. 173-180, 2000.",
			},
		},
		{
			Slug:          "pbj-task-graph",
			Title:         "Peanut Butter and Jelly Task Graph",
			Date:          "2015-08-01",
			CS2013:        []string{"PD_ParallelDecomposition"},
			CS2013Details: []string{"PD_2", "PD_4"},
			TCPP:          []string{"TCPP_Algorithms"},
			TCPPDetails:   []string{"C_Dependencies", "C_TaskGraphs"},
			Courses:       []string{"K_12", "CS0", "CS1"},
			Senses:        []string{"visual", "movement", "touch", "accessible"},
			Medium:        []string{"role-play", "paper", "food"},
			Author:        "Collected from classroom practice across the Web",
			Details: `The classic precise-instructions sandwich demonstration, extended
to parallelism: the class first writes painfully exact steps for making a
peanut butter and jelly sandwich, then asks which steps two cooks could do
at once. Spreading peanut butter and spreading jelly can overlap only with
two knives and two bread slices laid out; assembling must wait for both.
Students draw the dependency graph on paper, mark the critical path, and
predict the best two-cook time before acting it out.

**Running it**: insist the instruction cards are executed with malicious
literalism (the classic demonstration) before any parallelization — the
class must fix sequential correctness first, a point worth making out
loud. Then challenge teams to beat the two-cook prediction; they cannot,
because the critical path is physical here, and that impossibility is the
span lesson.`,
			Accessibility: `Food can be replaced by craft-paper props; the dependency
drawing carries the content. Judged generally accessible.`,
			Assessment: "None known.",
			Citations: []string{
				"S. J. Matthews, \"PDCunplugged: A free repository of unplugged parallel distributed computing activities,\" IPDPSW 2020 (curation entry).",
			},
		},
	}
}
