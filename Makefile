# Standard gate for this repository. `make check` is what CI (and every
# PR) must keep green: vet, formatting, and the full test suite under
# the race detector.

GO ?= go

.PHONY: check lint vet fmtcheck test test-race build fmt bench-smoke trace-overhead slo-smoke loadtest-baseline

check: lint test-race bench-smoke trace-overhead slo-smoke

# Static hygiene in one target: formatting and go vet.
lint: fmtcheck vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Closed-loop SLO gate: self-serve the engine, replay the default
# traffic mix (with generation churn) for a short smoke window, and
# compare against the committed baseline with noise-tolerant
# thresholds. Fails on tail-latency, error-rate, allocation, or
# error-budget regressions. Re-record with `make loadtest-baseline`
# after an intentional performance change.
slo-smoke:
	$(GO) run ./cmd/pdcu loadtest -duration 2s -qps 200 -churn 700ms -gate BENCH_loadtest.json

loadtest-baseline:
	$(GO) run ./cmd/pdcu loadtest -duration 2s -qps 200 -churn 700ms -baseline BENCH_loadtest.json

# Tracing cost ceiling: with sampling off, the traced cached
# /api/v1/search path must stay within 5% of the untraced one
# (BenchmarkTraceOverhead measures it; this test enforces it). Runs
# without -race — the gate skips itself under the race detector.
trace-overhead:
	$(GO) test -run=TestTraceOverheadBudget -count=1 -v .
