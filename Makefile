# Standard gate for this repository. `make check` is what CI (and every
# PR) must keep green: vet, formatting, and the full test suite under
# the race detector.

GO ?= go

.PHONY: check lint vet fmtcheck test test-race build fmt bench-smoke trace-overhead slo-smoke loadtest-baseline bench-index bench-index-record fuzz-smoke replica-smoke fleet-obs-smoke federation-smoke

check: lint test-race bench-smoke trace-overhead bench-index slo-smoke replica-smoke fleet-obs-smoke federation-smoke

# Static hygiene in one target: formatting and go vet.
lint: fmtcheck vet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Closed-loop SLO gate: self-serve the engine, replay the default
# traffic mix (with generation churn) for a short smoke window, and
# compare against the committed baseline with noise-tolerant
# thresholds. Fails on tail-latency, error-rate, allocation, or
# error-budget regressions. Re-record with `make loadtest-baseline`
# after an intentional performance change.
slo-smoke:
	$(GO) run ./cmd/pdcu loadtest -duration 2s -qps 200 -churn 700ms -gate BENCH_loadtest.json

loadtest-baseline:
	$(GO) run ./cmd/pdcu loadtest -duration 2s -qps 200 -churn 700ms -baseline BENCH_loadtest.json

# Search/index benchmark gate: re-measure the gated suite (cold query
# serve, search, suggest, filtered activities, facet counts) and compare
# against the newest record in the committed BENCH_search.json
# trajectory with noise-tolerant thresholds. A failure names the
# violated metric ("SearchCold:allocs_per_op"). Re-record after an
# intentional performance change with `make bench-index-record`, which
# appends a build-stamped record (or refines the current engine's
# newest one) instead of overwriting the history.
bench-index:
	$(GO) test -run=TestSearchBenchGate -count=1 -v .

bench-index-record:
	PDCU_BENCH_SEARCH_RECORD=1 $(GO) test -run=TestSearchBenchGate -count=1 -v .

# Short native-fuzzing burst over the tokenizer and the query paths:
# catches panics and broken invariants on adversarial input without a
# long campaign. Corpus findings land in testdata/fuzz and become
# regression seeds.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/search
	$(GO) test -run='^$$' -fuzz=FuzzSearch -fuzztime=10s ./internal/search
	$(GO) test -run='^$$' -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/replica

# Replication smoke under the race detector: an in-process leader plus
# two followers (one chained off the other) converge through a mid-test
# corpus edit and serve byte-identical, generation-tagged responses,
# with neither follower parsing Markdown or building an index.
replica-smoke:
	$(GO) test -race -run 'TestReplicaSmoke|TestColdStartFromSnapshotDir' -count=1 -v ./cmd/pdcu

# Fleet observability smoke under the race detector: a leader and a
# follower wired the way cmdServe wires them must produce a stitched
# cross-node trace (follower fetch + leader snapshot serve under one
# trace ID), a federated /metrics/fleet with both node labels, /readyz
# replication extras, and a downloadable pprof capture from an induced
# SLO breach. The rollup-across-Adopt test rides along: generation
# swaps must not clamp counter windows as resets.
fleet-obs-smoke:
	$(GO) test -race -run 'TestFleetObsSmoke|TestRollupWindowsSpanAdopt' -count=1 -v ./cmd/pdcu

# Multi-corpus federation smoke under the race detector: a leader
# federating two catalogs must serve the ?source= query dimension and
# per-source facet counts, round-trip the contribution-validation
# endpoint (accepted and needs-work), and replicate the federated
# PDCUSNP2 snapshot to a follower that validates submissions without a
# single local index build.
federation-smoke:
	$(GO) test -race -run TestFederationSmoke -count=1 -v ./cmd/pdcu

# Tracing cost ceiling: with sampling off, the traced cached
# /api/v1/search path must stay within 5% of the untraced one
# (BenchmarkTraceOverhead measures it; this test enforces it). Runs
# without -race — the gate skips itself under the race detector.
trace-overhead:
	$(GO) test -run=TestTraceOverheadBudget -count=1 -v .
