// Quickstart: open the curated PDCunplugged corpus, look an activity up,
// browse by taxonomy, and run one dramatization.
package main

import (
	"fmt"
	"log"
	"strings"

	"pdcunplugged"
)

func main() {
	// The embedded corpus: the 38 activities the paper's evaluation covers.
	repo, err := pdcunplugged.Open()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDCunplugged corpus: %d activities\n\n", repo.Len())

	// Look one activity up by slug.
	a, ok := repo.Get("findsmallestcard")
	if !ok {
		log.Fatal("findsmallestcard missing")
	}
	fmt.Printf("%s — by %s\n", a.Title, a.Author)
	fmt.Printf("  CS2013: %s\n", strings.Join(a.CS2013, ", "))
	fmt.Printf("  TCPP:   %s\n", strings.Join(a.TCPP, ", "))
	fmt.Printf("  Courses: %s; senses: %s; medium: %s\n\n",
		strings.Join(a.Courses, ", "), strings.Join(a.Senses, ", "), strings.Join(a.Medium, ", "))

	// Browse by taxonomy: what can I run in a CS1 class with a deck of
	// cards?
	fmt.Println("Card activities recommended for CS1:")
	for _, act := range repo.ByCourse("CS1") {
		for _, m := range act.Medium {
			if m == "cards" {
				fmt.Printf("  - %s (%s)\n", act.Title, act.Slug)
			}
		}
	}
	fmt.Println()

	// Every activity family has a runnable goroutine dramatization.
	rep, err := pdcunplugged.Simulate("findsmallestcard",
		pdcunplugged.SimConfig{Participants: 16, Seed: 42, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Dramatization:", rep.Outcome)
	fmt.Print(rep.Tracer.Transcript())
}
