// Workshop prepares a complete outreach session the way Section III-E
// suggests ("unplugged activities are also a useful way to introduce
// parallelism in outreach or workshop settings"): plan a constrained
// activity sequence, generate the pre/post assessment for each pick, run
// the matching dramatizations as a rehearsal, and analyze a (synthetic)
// class's results.
package main

import (
	"fmt"
	"log"

	"pdcunplugged"
)

func main() {
	repo, err := pdcunplugged.Open()
	if err != nil {
		log.Fatal(err)
	}

	// A K-12 outreach session: no food props, four slots.
	constraints := pdcunplugged.PlanConstraints{
		Course:       "K_12",
		AvoidMediums: []string{"food"},
		Slots:        4,
	}
	p, err := pdcunplugged.BuildPlan(repo, constraints)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p.Summary())
	fmt.Printf("(reaches %.0f%% of the curation's covered terms)\n\n", 100*p.CoverageRatio(repo))

	for _, sel := range p.Selections {
		a, _ := repo.Get(sel.Slug)

		// The assessment sheet for this pick.
		sheet, err := pdcunplugged.GenerateAssessment(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %d assessment items ==\n", a.Title, len(sheet.Items))

		// Rehearse the dramatization when one ships.
		if simName, ok := pdcunplugged.SimulationFor(sel.Slug); ok {
			rep, err := pdcunplugged.Simulate(simName, pdcunplugged.SimConfig{Participants: 12, Seed: 11})
			if err != nil || !rep.OK {
				log.Fatalf("rehearsal %s: %v %v", simName, err, rep)
			}
			fmt.Println("  rehearsal:", rep.Outcome)
		}

		// Analyze a synthetic class (until real classroom data exists —
		// the assessment gap the paper challenges the community to fill).
		if len(sheet.Items) > 0 {
			responses := pdcunplugged.SimulatedResponses(len(sheet.Items), 24, 0.65, 7)
			analysis, err := pdcunplugged.AnalyzeAssessment(len(sheet.Items), responses)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  synthetic class: pre %.0f%%, post %.0f%%, gain %.2f\n\n",
				100*analysis.PreMean, 100*analysis.PostMean, analysis.NormalizedGain)
		}
	}
}
