// Classroom runs a narrated unplugged-PDC session: the lesson plan an
// instructor might actually follow — a parallel-thinking warm-up, a sorting
// dramatization, a race-condition scene, and a fault-tolerance finale —
// each executed by goroutine "students" with a full transcript.
package main

import (
	"fmt"
	"log"

	"pdcunplugged"
)

type lesson struct {
	name  string
	intro string
	cfg   pdcunplugged.SimConfig
}

func main() {
	plan := []lesson{
		{
			name:  "findsmallestcard",
			intro: "Warm-up: who holds the smallest card? First alone, then together.",
			cfg:   pdcunplugged.SimConfig{Participants: 12, Seed: 7, Trace: true},
		},
		{
			name:  "oddeven",
			intro: "Main activity: the whole line sorts itself, two neighbors at a time.",
			cfg:   pdcunplugged.SimConfig{Participants: 8, Seed: 7, Trace: true},
		},
		{
			name:  "juicerace",
			intro: "Discussion scene: two robots sweeten the same glass of juice.",
			cfg:   pdcunplugged.SimConfig{Participants: 3, Seed: 7, Trace: true, Params: map[string]float64{"spoonfuls": 50}},
		},
		{
			name:  "tokenring",
			intro: "Finale: scramble the circle and watch it heal itself.",
			cfg:   pdcunplugged.SimConfig{Participants: 6, Seed: 7, Trace: true},
		},
	}

	for i, l := range plan {
		fmt.Printf("=== Part %d: %s ===\n%s\n\n", i+1, l.name, l.intro)
		rep, err := pdcunplugged.Simulate(l.name, l.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Tracer.Transcript())
		fmt.Printf("\nOutcome: %s\nMetrics: %s\n\n", rep.Outcome, rep.Metrics)
		if !rep.OK {
			log.Fatalf("%s: invariant violated", l.name)
		}
	}
	fmt.Println("Class dismissed: every invariant held.")
}
