// Gap-analysis answers the paper's third research question — "where should
// educators concentrate on developing new content?" — by listing every
// uncovered CS2013 learning outcome and TCPP core topic, scoring the
// gap-fill activities this library proposes, and demonstrating one of them
// (the collectives dramatization) live.
package main

import (
	"fmt"
	"log"
	"strings"

	"pdcunplugged"
)

func main() {
	repo, err := pdcunplugged.Open()
	if err != nil {
		log.Fatal(err)
	}

	g := pdcunplugged.FindGaps(repo)
	fmt.Printf("Coverage gaps in the current curation: %d learning outcomes, %d core topics.\n\n",
		len(g.Outcomes), len(g.Topics))

	fmt.Println("Uncovered CS2013 learning outcomes:")
	for _, og := range g.Outcomes {
		fmt.Printf("  %-8s [%s] %s\n", og.Term, og.Unit.Abbrev, og.Outcome.Text)
	}
	fmt.Println("\nUncovered TCPP core topics:")
	byArea := map[string][]string{}
	for _, tg := range g.Topics {
		byArea[tg.Area.Name] = append(byArea[tg.Area.Name],
			fmt.Sprintf("%s (%s)", tg.Term, tg.Topic.Subcategory))
	}
	for area, topics := range byArea {
		fmt.Printf("  %s:\n    %s\n", area, strings.Join(topics, "\n    "))
	}

	// Score the proposed gap-fill activities, the paper's impact idea: an
	// activity covering uncovered terms has high impact.
	fmt.Println("\nProposed new activities and their impact scores:")
	proposals := []struct {
		title       string
		cs2013, tcp []string
	}{
		{"Classroom Collectives (this library's 'collectives' sim)",
			nil, []string{"A_Broadcast", "A_ScatterGather"}},
		{"Human Prefix Sum", nil, []string{"C_Scan", "C_Reduction"}},
		{"Recursive Handshake Tree", nil, []string{"C_ParallelRecursion"}},
		{"Web Search Relay", nil, []string{"K_WebSearch", "K_PeerToPeer"}},
		{"A re-tagging of FindSmallestCard", nil, []string{"C_ParallelSelection"}},
	}
	for _, p := range proposals {
		score, novel, err := pdcunplugged.Impact(repo, p.cs2013, p.tcp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-52s impact %d  (novel: %s)\n", p.title, score, strings.Join(novel, ", "))
	}

	// One gap-fill ships as a runnable dramatization already.
	fmt.Println("\nRunning the collectives gap-fill dramatization:")
	rep, err := pdcunplugged.Simulate("collectives", pdcunplugged.SimConfig{Participants: 16, Seed: 3})
	if err != nil || !rep.OK {
		log.Fatalf("collectives: %v %v", err, rep)
	}
	fmt.Println(" ", rep.Outcome)
}
