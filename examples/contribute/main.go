// Contribute walks the paper's contribution workflow end to end: scaffold
// the Fig. 1 template, fill in a new gap-covering activity, run the
// curator review (validity, nudges, duplicate and variation detection,
// impact scoring), and preview the merge's effect on coverage.
package main

import (
	"fmt"
	"log"

	"pdcunplugged"
)

func main() {
	repo, err := pdcunplugged.Open()
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: a contributor scaffolds the template...
	fmt.Println("== Step 1: scaffold (pdcu new \"Human Prefix Sum\") ==")
	fmt.Println(pdcunplugged.ActivityTemplate("Human Prefix Sum"))

	// ...and fills it in. This proposal covers the Scan and Reduction
	// paradigm topics, which the gap analysis reports as uncovered.
	submission := `---
title: "Human Prefix Sum"
date: "2020-06-01"
cs2013: ["PD_ParallelAlgorithms"]
cs2013details: ["PAAP_7"]
tcpp: ["TCPP_Algorithms"]
tcppdetails: ["C_Scan", "C_Reduction"]
courses: ["CS2", "DSA"]
senses: ["visual", "movement"]
medium: ["role-play", "cards"]
---

## Original Author/link

This library's gap-fill proposal

No external resources found. See details below.

---

## Details

Students in a row each hold a number card. In round r, every student
simultaneously adds the value held by the student 2^(r-1) seats to their
left. After ceil(log2 n) rounds each student holds the running total up to
their seat, and the last student holds the grand total: scan and reduction
in one dramatization (see the 'scan' simulation in this library).

---

## Accessibility

Performed seated in rows; card values can be large-print.

---

## Assessment

None known.

---

## Citations

- S. J. Matthews, "PDCunplugged: A free repository of unplugged parallel distributed computing activities," IPDPSW 2020 (curation entry).
`

	// Step 2: the curator reviews the submission.
	fmt.Println("== Step 2: curator review ==")
	rev := pdcunplugged.ReviewSubmission(repo, "human-prefix-sum", submission)
	fmt.Print(rev.Summary())
	if !rev.Accepted() {
		log.Fatal("submission rejected")
	}

	// Step 3: merge preview, with the coverage delta.
	fmt.Println("\n== Step 3: merge preview ==")
	merged, delta, err := pdcunplugged.MergeActivity(repo, rev.Activity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(delta)

	// The previously-uncovered topics are now covered.
	gapsBefore := pdcunplugged.FindGaps(repo)
	gapsAfter := pdcunplugged.FindGaps(merged)
	fmt.Printf("topic gaps: %d -> %d\n", len(gapsBefore.Topics), len(gapsAfter.Topics))

	// And the corresponding dramatization already ships.
	rep, err := pdcunplugged.Simulate("scan", pdcunplugged.SimConfig{Participants: 16, Seed: 2})
	if err != nil || !rep.OK {
		log.Fatal(err)
	}
	fmt.Println("\nlive demo:", rep.Outcome)
}
