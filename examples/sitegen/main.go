// Sitegen builds the pdcunplugged.org static site from the curated corpus
// into ./public — the Hugo-workflow equivalent — and reports what it wrote.
package main

import (
	"fmt"
	"log"
	"strings"

	"pdcunplugged"
)

func main() {
	repo, err := pdcunplugged.Open()
	if err != nil {
		log.Fatal(err)
	}
	site, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		log.Fatal(err)
	}
	if err := site.WriteTo("public"); err != nil {
		log.Fatal(err)
	}

	counts := map[string]int{}
	for _, p := range site.Paths() {
		top, _, _ := strings.Cut(p, "/")
		counts[top]++
	}
	fmt.Printf("wrote %d files under ./public from %d activities\n", site.Len(), repo.Len())
	for _, section := range []string{"activities", "assess", "cs2013", "tcpp", "courses", "senses", "medium", "cs2013details", "tcppdetails", "views", "api"} {
		fmt.Printf("  %-16s %d pages\n", section, counts[section])
	}
	fmt.Println("preview with: pdcu serve  (or any static file server over ./public)")
}
