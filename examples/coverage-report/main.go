// Coverage-report regenerates the paper's entire evaluation: Table I
// (CS2013 coverage), Table II (TCPP coverage), the Section III-C
// sub-category analysis, and the Section III-A/III-D statistics.
package main

import (
	"fmt"
	"log"

	"pdcunplugged"
)

func main() {
	repo, err := pdcunplugged.Open()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TABLE I — CS2013 coverage")
	fmt.Printf("%-48s %8s %8s %9s %11s\n", "Knowledge Unit", "Num LOs", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableI(repo) {
		name := r.Unit.Name
		if r.Unit.Elective {
			name += " (E)"
		}
		fmt.Printf("%-48s %8d %8d %8.2f%% %11d\n",
			name, r.NumOutcomes, r.CoveredOutcomes, r.PercentCoverage(), r.TotalActivities)
	}

	fmt.Println("\nTABLE II — TCPP coverage (core-course topics)")
	fmt.Printf("%-36s %10s %8s %9s %11s\n", "Topic Area", "Num Topics", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableII(repo) {
		fmt.Printf("%-36s %10d %8d %8.2f%% %11d\n",
			r.Area.Name, r.NumTopics, r.CoveredTopics, r.PercentCoverage(), r.TotalActivities)
	}

	fmt.Println("\nSection III-C — sub-category coverage")
	for _, r := range pdcunplugged.Subcategories(repo) {
		fmt.Printf("  %-34s %-30s %2d/%2d (%.2f%%)\n",
			r.Area, r.Subcategory, r.CoveredTopics, r.NumTopics, r.PercentCoverage())
	}

	fmt.Println("\nSection III-A — activities per course")
	for _, c := range pdcunplugged.CourseCounts(repo) {
		fmt.Printf("  %-10s %d\n", c.Term, c.Count)
	}

	fmt.Println("\nSection III-D — mediums")
	for _, c := range pdcunplugged.MediumCounts(repo) {
		fmt.Printf("  %-12s %d\n", c.Term, c.Count)
	}

	fmt.Println("\nSection III-D — senses engaged")
	for _, s := range pdcunplugged.SenseStats(repo) {
		fmt.Printf("  %-12s %2d (%.2f%%)\n", s.Sense, s.Count, s.Percent)
	}
}
