package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"pdcunplugged/internal/loadgen"
)

// committedBaseline is the benchmark artifact checked into the repo
// root; the loadtest gate in `make slo-smoke` compares against it.
const committedBaseline = "../../BENCH_loadtest.json"

func runLoadtest(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(append([]string{"loadtest"}, args...), &buf)
	return buf.String(), err
}

// TestLoadtestGatePassesAgainstCommittedBaseline runs the gate twice
// against the committed baseline: both must pass. This is the
// no-false-positives contract — the committed artifact has to survive
// fresh runs on whatever machine CI lands on, or the gate is noise.
func TestLoadtestGatePassesAgainstCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke run")
	}
	if raceEnabled {
		t.Skip("latency SLOs cannot hold under the race detector's slowdown")
	}
	for i := 0; i < 2; i++ {
		out, err := runLoadtest(t,
			"-duration", "1s", "-qps", "150", "-churn", "400ms",
			"-gate", committedBaseline)
		if err != nil {
			t.Fatalf("run %d: gate failed against committed baseline: %v\n%s", i+1, err, out)
		}
		if !strings.Contains(out, "gate PASS") {
			t.Fatalf("run %d: no PASS verdict in output:\n%s", i+1, out)
		}
	}
}

// TestLoadtestGateFailsOnInjectedSlowdown fronts a real engine with a
// 60ms stall on the query API and gates that against the committed
// baseline: the gate must fail and the report must name the violated
// latency objective.
func TestLoadtestGateFailsOnInjectedSlowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke run")
	}
	if raceEnabled {
		t.Skip("latency thresholds are meaningless under the race detector's slowdown")
	}
	eng := builtEngine(t, nil)
	mux := eng.Mux()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/v1/") {
			time.Sleep(60 * time.Millisecond)
		}
		mux.ServeHTTP(w, r)
	}))
	defer slow.Close()

	out, err := runLoadtest(t,
		"-target", slow.URL, "-duration", "700ms", "-qps", "80",
		"-gate", committedBaseline)
	if err == nil {
		t.Fatalf("gate passed despite a 60ms injected stall:\n%s", out)
	}
	if !strings.Contains(err.Error(), "gate FAIL") {
		t.Fatalf("error does not carry the gate verdict: %v", err)
	}
	if !strings.Contains(out, "latency:") {
		t.Fatalf("report does not name the violated latency objective:\n%s", out)
	}
}

// TestLoadtestBaselineWriteAndJSON: -baseline persists a loadable
// report stamped with build identity, and -json emits the same shape.
func TestLoadtestBaselineWriteAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke run")
	}
	path := filepath.Join(t.TempDir(), "BENCH_loadtest.json")
	out, err := runLoadtest(t,
		"-duration", "500ms", "-qps", "100", "-json", "-baseline", path)
	if err != nil {
		t.Fatalf("loadtest: %v\n%s", err, out)
	}
	rep, err := loadgen.LoadBaseline(path)
	if err != nil {
		t.Fatalf("written baseline does not load: %v", err)
	}
	if rep.Requests == 0 || rep.Build.GoVersion == "" {
		t.Fatalf("baseline missing data or build stamp: %+v", rep)
	}
	if len(rep.SLO) == 0 {
		t.Fatalf("self-serve run carried no SLO verdicts: %+v", rep)
	}
	var fromJSON loadgen.Report
	dec := json.NewDecoder(strings.NewReader(out))
	if err := dec.Decode(&fromJSON); err != nil {
		t.Fatalf("-json output is not a report: %v\n%s", err, out)
	}
	if fromJSON.Requests != rep.Requests {
		t.Fatalf("-json report (%d reqs) != baseline (%d reqs)", fromJSON.Requests, rep.Requests)
	}
}

func TestLoadtestFlagValidation(t *testing.T) {
	if _, err := runLoadtest(t, "-mix", "bogus=1"); err == nil {
		t.Error("bad mix accepted")
	}
	if _, err := runLoadtest(t, "-target", "http://127.0.0.1:1", "-churn", "1s"); err == nil {
		t.Error("-churn with -target accepted")
	}
	if _, err := runLoadtest(t, "-duration", "200ms", "-gate", filepath.Join(t.TempDir(), "nope.json"), "-target", "http://127.0.0.1:1"); err == nil {
		t.Error("missing gate baseline accepted")
	}
}

// TestServeSLOEndpointAndDashboard drives smoke traffic through a real
// engine mux, ticks the rollup, and checks that (a) /slo reports
// objectives with data and (b) /debug/obs renders the SLO panel with
// nonzero budget numbers.
func TestServeSLOEndpointAndDashboard(t *testing.T) {
	eng := builtEngine(t, nil)
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	for i := 0; i < 30; i++ {
		resp, err := http.Get(srv.URL + "/api/v1/search?q=parallel")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	eng.Rollup().Collect()

	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The metrics registry is process-global, so this engine's first
	// rollup window inherits every observation earlier tests made —
	// including race-slowed ones. The latency verdict is therefore not
	// asserted here (the loadtest gate tests own that); what must hold
	// regardless of history: the endpoint serves a verdict, every
	// default objective is present with event data, and at least one
	// carries a nonzero remaining budget.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/slo = %d, want 200 or 503", resp.StatusCode)
	}
	var report struct {
		SLOStatus  string `json:"status"`
		Objectives []struct {
			Name            string  `json:"name"`
			TotalSlow       float64 `json:"total_slow"`
			BudgetRemaining float64 `json:"budget_remaining"`
		} `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.SLOStatus == "" || report.SLOStatus == "no_data" {
		t.Fatalf("slo_status = %q after smoke traffic", report.SLOStatus)
	}
	byName := map[string]float64{}
	budgetSeen := false
	for _, o := range report.Objectives {
		byName[o.Name] = o.TotalSlow
		if o.BudgetRemaining > 0 {
			budgetSeen = true
		}
	}
	for _, name := range []string{"query-latency", "availability", "shed-rate"} {
		total, ok := byName[name]
		if !ok {
			t.Fatalf("objective %s missing: %+v", name, report.Objectives)
		}
		if total == 0 {
			t.Errorf("objective %s saw no events after smoke traffic", name)
		}
	}
	if !budgetSeen {
		t.Errorf("no objective has budget remaining: %+v", report.Objectives)
	}

	dash, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer dash.Body.Close()
	body, _ := io.ReadAll(dash.Body)
	html := string(body)
	if !strings.Contains(html, "SLOs") {
		t.Fatalf("dashboard has no SLO panel:\n%s", html)
	}
	for _, name := range []string{"query-latency", "availability", "shed-rate"} {
		if !strings.Contains(html, name) {
			t.Errorf("SLO panel missing objective %s", name)
		}
	}
	if !strings.Contains(html, "budget remaining") {
		t.Error("SLO panel missing budget column")
	}
	// The budget gauge renders as a percentage; healthy traffic must
	// show a nonzero budget, not the no-data dash.
	if !regexp.MustCompile(`[1-9][0-9]*\.[0-9]%`).MatchString(html) {
		t.Errorf("SLO panel shows no nonzero budget percentage:\n%s", html)
	}
}
