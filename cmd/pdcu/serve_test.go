package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"pdcunplugged"
)

func serveTestMux(t *testing.T, withPprof bool) (*http.ServeMux, *atomic.Pointer[liveSite]) {
	t.Helper()
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		t.Fatal(err)
	}
	cur := &atomic.Pointer[liveSite]{}
	cur.Store(newLiveSite(s, repo))
	return serveMux(cur, withPprof), cur
}

func serveTestServer(t *testing.T, withPprof bool) *httptest.Server {
	t.Helper()
	mux, _ := serveTestMux(t, withPprof)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestServeHealthz(t *testing.T) {
	srv := func() *httptest.Server { mux, _ := serveTestMux(t, false); return httptest.NewServer(mux) }()
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var health struct {
		Status     string `json:"status"`
		Pages      int    `json:"pages"`
		Activities int    `json:"activities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Pages == 0 || health.Activities == 0 {
		t.Errorf("health = %+v", health)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	srv := func() *httptest.Server { mux, _ := serveTestMux(t, false); return httptest.NewServer(mux) }()
	defer srv.Close()

	// Generate site traffic, then scrape.
	for _, p := range []string{"/", "/views/tcpp/", "/no/such/page/"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`pdcu_http_requests_total{path="/",code="200"}`,
		`pdcu_http_requests_total{path="/views",code="200"}`,
		`pdcu_http_requests_total{path="/no",code="404"}`,
		"# TYPE pdcu_http_request_duration_seconds histogram",
		`pdcu_phase_seconds_count{phase="site.build"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServePprofGating(t *testing.T) {
	withoutPprof := func() *httptest.Server { mux, _ := serveTestMux(t, false); return httptest.NewServer(mux) }()
	defer withoutPprof.Close()
	resp, err := http.Get(withoutPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}

	withPprof := func() *httptest.Server { mux, _ := serveTestMux(t, true); return httptest.NewServer(mux) }()
	defer withPprof.Close()
	resp, err = http.Get(withPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200", resp.StatusCode)
	}
}

// writeCorpus materializes the embedded corpus as .md files under a
// fresh temp dir — a stand-in for a contributor's content checkout.
func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for slug, content := range pdcunplugged.CorpusFiles() {
		if err := os.WriteFile(filepath.Join(dir, slug+".md"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestServeLiveSwap(t *testing.T) {
	mux, cur := serveTestMux(t, false)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	const page = "/activities/findsmallestcard/"
	if code := get(page); code != http.StatusOK {
		t.Fatalf("%s before swap = %d, want 200", page, code)
	}

	// Rebuild a smaller site (one activity removed) and publish it
	// through the pointer, as the -watch loop would.
	files := pdcunplugged.CorpusFiles()
	delete(files, "findsmallestcard")
	repo, err := pdcunplugged.Load(files)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(newLiveSite(s, repo))

	if code := get(page); code != http.StatusNotFound {
		t.Errorf("%s after swap = %d, want 404", page, code)
	}
	if code := get("/"); code != http.StatusOK {
		t.Errorf("/ after swap = %d, want 200", code)
	}
}

func TestReloadSite(t *testing.T) {
	dir := writeCorpus(t)
	b := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{})
	cur := &atomic.Pointer[liveSite]{}

	if err := reloadSite(b, dir, cur); err != nil {
		t.Fatalf("initial reload: %v", err)
	}
	first := cur.Load()
	if first == nil || first.site.Len() == 0 {
		t.Fatal("reload did not publish a site")
	}

	// A corpus edit flows through: retag an existing activity and the
	// rebuilt site drops its page.
	victim := filepath.Join(dir, "findsmallestcard.md")
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if err := reloadSite(b, dir, cur); err != nil {
		t.Fatalf("reload after delete: %v", err)
	}
	second := cur.Load()
	if second == first {
		t.Fatal("reload did not swap the live site")
	}
	if _, ok := second.site.Pages["activities/findsmallestcard/index.html"]; ok {
		t.Error("deleted activity still present after reload")
	}
	st := b.LastStats()
	if st.CacheHits == 0 {
		t.Errorf("incremental reload had no cache hits: %+v", st)
	}

	// A broken corpus keeps the previous site live.
	bad := filepath.Join(dir, "broken.md")
	if err := os.WriteFile(bad, []byte("---\ntitle: unterminated frontmatter\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reloadSite(b, dir, cur); err == nil {
		t.Fatal("reload of broken corpus should error")
	}
	if cur.Load() != second {
		t.Error("failed reload must not swap the live site")
	}
}

func TestServeWatchRequiresSrc(t *testing.T) {
	err := run([]string{"serve", "-watch"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-watch requires -src") {
		t.Errorf("serve -watch without -src: err = %v", err)
	}
}
