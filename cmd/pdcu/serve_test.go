package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pdcunplugged"
	"pdcunplugged/internal/corpus"
	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/query"
)

// testEngine builds an engine the way cmdServe would — layered config,
// then engine.New — with test-friendly defaults: admission control off
// (no 429s under load) and a keep-everything tracer. No generation is
// published yet; callers drive Rebuild themselves.
func testEngine(t *testing.T, mutate func(*engine.Config)) *engine.Engine {
	t.Helper()
	cfg := engine.Defaults()
	cfg.Rate = 0
	cfg.TraceSample = 1
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// builtEngine is testEngine plus the first published generation.
func builtEngine(t *testing.T, mutate func(*engine.Config)) *engine.Engine {
	t.Helper()
	eng := testEngine(t, mutate)
	if _, err := eng.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}
	return eng
}

func serveTestServer(t *testing.T, mutate func(*engine.Config)) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(builtEngine(t, mutate).Mux())
	t.Cleanup(srv.Close)
	return srv
}

func TestServeHealthz(t *testing.T) {
	srv := serveTestServer(t, nil)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("health = %+v", health)
	}
}

// TestServeReadyz pins the liveness/readiness split: /readyz is 503 until
// the engine publishes its first generation, then reports the generation
// identity, counts, the last pipeline outcome, and build info.
func TestServeReadyz(t *testing.T) {
	eng := testEngine(t, nil)
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	// Not ready: nothing published yet.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var starting struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&starting); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || starting.Status != "starting" {
		t.Fatalf("/readyz before first publish = %d %+v, want 503 starting", resp.StatusCode, starting)
	}

	// Publish generation 1; readiness flips with a real rebuild outcome.
	gen, err := eng.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
	var ready struct {
		Status     string  `json:"status"`
		Generation string  `json:"generation"`
		Seq        uint64  `json:"seq"`
		Pages      int     `json:"pages"`
		Activities int     `json:"activities"`
		Uptime     float64 `json:"uptime_seconds"`
		Rebuild    *struct {
			OK      bool   `json:"ok"`
			TraceID string `json:"trace_id"`
		} `json:"last_rebuild"`
		Build *struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Generation != gen.ID || ready.Seq != 1 ||
		ready.Pages == 0 || ready.Activities == 0 {
		t.Errorf("ready body = %+v", ready)
	}
	if ready.Rebuild == nil || !ready.Rebuild.OK || ready.Rebuild.TraceID == "" {
		t.Errorf("last_rebuild = %+v", ready.Rebuild)
	}
	if ready.Build == nil || ready.Build.GoVersion == "" {
		t.Errorf("build info = %+v", ready.Build)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	srv := serveTestServer(t, nil)

	// Generate site traffic, then scrape.
	for _, p := range []string{"/", "/views/tcpp/", "/no/such/page/"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`pdcu_http_requests_total{path="/",code="200"}`,
		`pdcu_http_requests_total{path="/views",code="200"}`,
		`pdcu_http_requests_total{path="/no",code="404"}`,
		"# TYPE pdcu_http_request_duration_seconds histogram",
		`pdcu_phase_seconds_count{phase="site.build"}`,
		"# TYPE pdcu_engine_generation gauge",
		"# TYPE pdcu_engine_publish_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServePprofGating(t *testing.T) {
	withoutPprof := serveTestServer(t, nil)
	resp, err := http.Get(withoutPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}

	withPprof := serveTestServer(t, func(c *engine.Config) { c.Pprof = true })
	resp, err = http.Get(withPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200", resp.StatusCode)
	}
}

// writeCorpus materializes the embedded corpus as .md files under a
// fresh temp dir — a stand-in for a contributor's content checkout.
func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for slug, content := range pdcunplugged.CorpusFiles() {
		if err := os.WriteFile(filepath.Join(dir, slug+".md"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestServeLiveSwap(t *testing.T) {
	dir := writeCorpus(t)
	eng := builtEngine(t, func(c *engine.Config) { c.Srcs = engine.DirSources(dir) })
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Pdcu-Generation")
	}

	const page = "/activities/findsmallestcard/"
	code, gen1 := get(page)
	if code != http.StatusOK {
		t.Fatalf("%s before swap = %d, want 200", page, code)
	}
	if gen1 != eng.Current().ID {
		t.Errorf("Pdcu-Generation %q, want %q", gen1, eng.Current().ID)
	}

	// Rebuild a smaller corpus (one activity removed); the engine
	// publishes the new generation through its pointer, as -watch would.
	if err := os.Remove(filepath.Join(dir, "findsmallestcard.md")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rebuild(context.Background()); err != nil {
		t.Fatal(err)
	}

	code, _ = get(page)
	if code != http.StatusNotFound {
		t.Errorf("%s after swap = %d, want 404", page, code)
	}
	code, gen2 := get("/")
	if code != http.StatusOK {
		t.Errorf("/ after swap = %d, want 200", code)
	}
	if gen2 == gen1 || gen2 != eng.Current().ID {
		t.Errorf("generation after swap = %q (before %q, current %q)", gen2, gen1, eng.Current().ID)
	}
}

// TestEngineRebuildServe drives the full pipeline the way the -watch
// loop does: corpus edits flow through Rebuild into a swapped
// generation, failures keep the previous generation live, and the query
// surface tracks the engine pointer with no state of its own.
func TestEngineRebuildServe(t *testing.T) {
	dir := writeCorpus(t)
	eng := builtEngine(t, func(c *engine.Config) { c.Srcs = engine.DirSources(dir) })
	first := eng.Current()
	if first == nil || first.Site.Len() == 0 {
		t.Fatal("rebuild did not publish a generation")
	}

	// A corpus edit flows through: delete an activity and the rebuilt
	// site drops its page.
	victim := filepath.Join(dir, "findsmallestcard.md")
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	gen2, err := eng.Rebuild(context.Background())
	if err != nil {
		t.Fatalf("rebuild after delete: %v", err)
	}
	if out := eng.LastOutcome(); out == nil || !out.OK || out.TraceID == "" {
		t.Errorf("rebuild outcome after success = %+v", out)
	}
	second := eng.Current()
	if second == first || second != gen2 {
		t.Fatal("rebuild did not swap the published generation")
	}
	if second.Seq != first.Seq+1 {
		t.Errorf("seq = %d after %d, want +1", second.Seq, first.Seq)
	}
	if got := eng.Query().Snapshot().Generation; got != second.ID {
		t.Errorf("query snapshot generation %q does not track the engine pointer (want %q)", got, second.ID)
	}
	if got := second.ID; got != second.Fingerprint[:len(got)] {
		t.Errorf("generation ID %q is not a prefix of the fingerprint", got)
	}
	if _, ok := second.Site.Pages["activities/findsmallestcard/index.html"]; ok {
		t.Error("deleted activity still present after rebuild")
	}
	if gen2.Stats.CacheHits == 0 {
		t.Errorf("incremental rebuild had no cache hits: %+v", gen2.Stats)
	}

	// A broken corpus keeps the previous generation live.
	bad := filepath.Join(dir, "broken.md")
	if err := os.WriteFile(bad, []byte("---\ntitle: unterminated frontmatter\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rebuild(context.Background()); err == nil {
		t.Fatal("rebuild of broken corpus should error")
	}
	if eng.Current() != second {
		t.Error("failed rebuild must not swap the published generation")
	}
	if out := eng.LastOutcome(); out == nil || out.OK || out.Error == "" {
		t.Errorf("rebuild outcome after failure = %+v", out)
	}
}

func TestServeWatchRequiresSrc(t *testing.T) {
	err := run([]string{"serve", "-watch"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-watch requires -src") {
		t.Errorf("serve -watch without -src: err = %v", err)
	}
}

// TestServeQueryAPI exercises the mounted /api/v1/ tree end to end
// through the engine mux: correct JSON bodies, and the query middleware
// counting requests under the /api route label.
func TestServeQueryAPI(t *testing.T) {
	eng := builtEngine(t, nil)
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	var sr query.SearchResponse
	getJSON(t, srv.URL+"/api/v1/search?q=byzantine", &sr)
	if sr.Count == 0 || sr.Results[0].Slug != "byzantine-generals" {
		t.Errorf("search response: %+v", sr)
	}
	if sr.Generation != eng.Current().ID {
		t.Errorf("search generation %q, want %q", sr.Generation, eng.Current().ID)
	}

	var ar query.ActivitiesResponse
	getJSON(t, srv.URL+"/api/v1/activities?course=CS1&medium=cards", &ar)
	if ar.Count == 0 || ar.Count != len(ar.Activities) {
		t.Errorf("activities response: count=%d len=%d", ar.Count, len(ar.Activities))
	}
	for _, a := range ar.Activities {
		if !contains(a.Courses, "CS1") || !contains(a.Medium, "cards") {
			t.Errorf("activity %s escaped the facet filter: %+v", a.Slug, a)
		}
	}

	var fr query.FacetsResponse
	getJSON(t, srv.URL+"/api/v1/facets", &fr)
	if fr.Activities == 0 || len(fr.Facets["course"]) == 0 || len(fr.Facets["tcpp"]) == 0 {
		t.Errorf("facets response: %+v", fr)
	}

	// The repeated query above is a cache hit, observable through the
	// real /metrics exposition mounted next to the site.
	var sr2 query.SearchResponse
	getJSON(t, srv.URL+"/api/v1/search?q=byzantine", &sr2)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`pdcu_query_cache_total{endpoint="search",result="hit"}`,
		`pdcu_query_cache_total{endpoint="search",result="miss"}`,
		`pdcu_query_requests_total{endpoint="search",code="200"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestServeQuerySwapUnderLoad hammers all three generation-reporting
// surfaces — the /api/v1/search body, the static site's Pdcu-Generation
// header, and /readyz — from several goroutines while the main
// goroutine repeatedly mutates the corpus and publishes new generations
// through the engine, as the -watch loop would. Run under -race by
// `make check`. It pins four properties: the load never produces a 5xx,
// every observed generation is one that was actually published, each
// worker observes generations in publish order (the single atomic
// pointer cannot travel backwards), and immediately after a publish all
// three surfaces report the new generation — no surface lags another.
func TestServeQuerySwapUnderLoad(t *testing.T) {
	dir := writeCorpus(t)
	eng := builtEngine(t, func(c *engine.Config) { c.Srcs = engine.DirSources(dir) })
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	// published maps generation ID -> publish order, recorded before
	// workers can observe it.
	var mu sync.Mutex
	published := map[string]int{eng.Current().ID: 0}

	// readGeneration observes one serving surface and returns the
	// generation it reported.
	readGeneration := func(surface int) (string, error) {
		switch surface {
		case 0: // query API response body
			resp, err := http.Get(srv.URL + "/api/v1/search?q=byzantine")
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 500 {
				return "", fmt.Errorf("query returned %d", resp.StatusCode)
			}
			var sr query.SearchResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				return "", err
			}
			return sr.Generation, nil
		case 1: // static site response header
			resp, err := http.Get(srv.URL + "/")
			if err != nil {
				return "", err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				return "", fmt.Errorf("site returned %d", resp.StatusCode)
			}
			return resp.Header.Get("Pdcu-Generation"), nil
		default: // readiness endpoint
			resp, err := http.Get(srv.URL + "/readyz")
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 500 {
				return "", fmt.Errorf("readyz returned %d", resp.StatusCode)
			}
			var rz struct {
				Generation string `json:"generation"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
				return "", err
			}
			return rz.Generation, nil
		}
	}

	stop := make(chan struct{})
	errc := make(chan error, 9)
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			last := -1
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				gen, err := readGeneration((worker + n) % 3)
				if err != nil {
					errc <- err
					return
				}
				mu.Lock()
				order, ok := published[gen]
				mu.Unlock()
				if !ok {
					errc <- fmt.Errorf("worker %d observed unpublished generation %q", worker, gen)
					return
				}
				if order < last {
					errc <- fmt.Errorf("worker %d observed generation %q (order %d) after order %d", worker, gen, order, last)
					return
				}
				last = order
			}
		}(i)
	}

	victim := filepath.Join(dir, "findsmallestcard.md")
	original, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		// Append a unique line so every swap produces a distinct
		// fingerprint (and therefore a distinct generation ID).
		edited := fmt.Sprintf("%s\nEdit pass %d of the swap-under-load test.\n", original, i)
		if err := os.WriteFile(victim, []byte(edited), 0o644); err != nil {
			t.Fatal(err)
		}
		// Record the generation this corpus will publish *before*
		// swapping, so workers can never observe an unknown one. The
		// prediction must go through the same corpus adapter the engine
		// uses so the provenance stamp is part of the fingerprint.
		next, err := corpus.LoadAll(corpus.Dir("", dir))
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		published[query.NewSnapshot(next).Generation] = i
		mu.Unlock()
		gen, err := eng.Rebuild(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// Immediately after the publish, every surface must already
		// report the new generation: one atomic pointer feeds all three,
		// so none can lag.
		for surface := 0; surface < 3; surface++ {
			got, err := readGeneration(surface)
			if err != nil {
				t.Fatalf("swap %d surface %d: %v", i, surface, err)
			}
			if got != gen.ID {
				t.Fatalf("swap %d: surface %d served generation %q, want %q", i, surface, got, gen.ID)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
