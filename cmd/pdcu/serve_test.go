package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdcunplugged"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/trace"
	"pdcunplugged/internal/query"
)

// newTestServeState wires a serveState around the given live pointer and
// query service with a keep-everything tracer, as cmdServe would after
// its first successful build.
func newTestServeState(cur *atomic.Pointer[liveSite], qsvc *query.Service) *serveState {
	st := newServeState(cur, qsvc, trace.New(trace.Options{SampleRate: 1}))
	st.rollup = obs.NewRollup(obs.Default(), time.Second, 16)
	st.health.ready.Store(true)
	return st
}

func serveTestMux(t *testing.T, withPprof bool) (*http.ServeMux, *atomic.Pointer[liveSite]) {
	t.Helper()
	mux, cur, _ := serveTestMuxQuery(t, withPprof)
	return mux, cur
}

func serveTestMuxQuery(t *testing.T, withPprof bool) (*http.ServeMux, *atomic.Pointer[liveSite], *query.Service) {
	t.Helper()
	st := serveTestState(t)
	return serveMux(st, withPprof), st.cur, st.qsvc
}

func serveTestState(t *testing.T) *serveState {
	t.Helper()
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		t.Fatal(err)
	}
	cur := &atomic.Pointer[liveSite]{}
	cur.Store(newLiveSite(s, repo))
	qsvc := query.New(query.NewSnapshot(repo), query.Options{})
	return newTestServeState(cur, qsvc)
}

func serveTestServer(t *testing.T, withPprof bool) *httptest.Server {
	t.Helper()
	mux, _ := serveTestMux(t, withPprof)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestServeHealthz(t *testing.T) {
	srv := func() *httptest.Server { mux, _ := serveTestMux(t, false); return httptest.NewServer(mux) }()
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("health = %+v", health)
	}
}

// TestServeReadyz pins the liveness/readiness split: /readyz is 503 until
// the first build is published, then reports corpus generation, counts,
// the last rebuild outcome, and build info.
func TestServeReadyz(t *testing.T) {
	st := serveTestState(t)
	mux := serveMux(st, false)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Not ready: first build still in flight.
	st.health.ready.Store(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var starting struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&starting); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || starting.Status != "starting" {
		t.Fatalf("/readyz before first build = %d %+v, want 503 starting", resp.StatusCode, starting)
	}

	// Ready, with a recorded rebuild outcome.
	st.health.ready.Store(true)
	st.health.rebuild.Store(&rebuildOutcome{Time: time.Now(), OK: true, Duration: "12ms", TraceID: "cafe"})
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
	var ready struct {
		Status     string  `json:"status"`
		Generation string  `json:"generation"`
		Pages      int     `json:"pages"`
		Activities int     `json:"activities"`
		Uptime     float64 `json:"uptime_seconds"`
		Rebuild    *struct {
			OK      bool   `json:"ok"`
			TraceID string `json:"trace_id"`
		} `json:"last_rebuild"`
		Build *struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Generation == "" || ready.Pages == 0 || ready.Activities == 0 {
		t.Errorf("ready body = %+v", ready)
	}
	if ready.Rebuild == nil || !ready.Rebuild.OK || ready.Rebuild.TraceID != "cafe" {
		t.Errorf("last_rebuild = %+v", ready.Rebuild)
	}
	if ready.Build == nil || ready.Build.GoVersion == "" {
		t.Errorf("build info = %+v", ready.Build)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	srv := func() *httptest.Server { mux, _ := serveTestMux(t, false); return httptest.NewServer(mux) }()
	defer srv.Close()

	// Generate site traffic, then scrape.
	for _, p := range []string{"/", "/views/tcpp/", "/no/such/page/"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`pdcu_http_requests_total{path="/",code="200"}`,
		`pdcu_http_requests_total{path="/views",code="200"}`,
		`pdcu_http_requests_total{path="/no",code="404"}`,
		"# TYPE pdcu_http_request_duration_seconds histogram",
		`pdcu_phase_seconds_count{phase="site.build"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServePprofGating(t *testing.T) {
	withoutPprof := func() *httptest.Server { mux, _ := serveTestMux(t, false); return httptest.NewServer(mux) }()
	defer withoutPprof.Close()
	resp, err := http.Get(withoutPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}

	withPprof := func() *httptest.Server { mux, _ := serveTestMux(t, true); return httptest.NewServer(mux) }()
	defer withPprof.Close()
	resp, err = http.Get(withPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200", resp.StatusCode)
	}
}

// writeCorpus materializes the embedded corpus as .md files under a
// fresh temp dir — a stand-in for a contributor's content checkout.
func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for slug, content := range pdcunplugged.CorpusFiles() {
		if err := os.WriteFile(filepath.Join(dir, slug+".md"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestServeLiveSwap(t *testing.T) {
	mux, cur := serveTestMux(t, false)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	const page = "/activities/findsmallestcard/"
	if code := get(page); code != http.StatusOK {
		t.Fatalf("%s before swap = %d, want 200", page, code)
	}

	// Rebuild a smaller site (one activity removed) and publish it
	// through the pointer, as the -watch loop would.
	files := pdcunplugged.CorpusFiles()
	delete(files, "findsmallestcard")
	repo, err := pdcunplugged.Load(files)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		t.Fatal(err)
	}
	cur.Store(newLiveSite(s, repo))

	if code := get(page); code != http.StatusNotFound {
		t.Errorf("%s after swap = %d, want 404", page, code)
	}
	if code := get("/"); code != http.StatusOK {
		t.Errorf("/ after swap = %d, want 200", code)
	}
}

func TestReloadSite(t *testing.T) {
	dir := writeCorpus(t)
	b := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{})
	cur := &atomic.Pointer[liveSite]{}
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	qsvc := query.New(query.NewSnapshot(repo), query.Options{})
	st := newTestServeState(cur, qsvc)

	if err := reloadSite(st, b, dir); err != nil {
		t.Fatalf("initial reload: %v", err)
	}
	first := cur.Load()
	if first == nil || first.site.Len() == 0 {
		t.Fatal("reload did not publish a site")
	}

	// A corpus edit flows through: retag an existing activity and the
	// rebuilt site drops its page.
	victim := filepath.Join(dir, "findsmallestcard.md")
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	if err := reloadSite(st, b, dir); err != nil {
		t.Fatalf("reload after delete: %v", err)
	}
	if out := st.health.rebuild.Load(); out == nil || !out.OK || out.TraceID == "" {
		t.Errorf("rebuild outcome after success = %+v", out)
	}
	second := cur.Load()
	if second == first {
		t.Fatal("reload did not swap the live site")
	}
	if got := qsvc.Snapshot().Generation; got != second.repo.Fingerprint()[:len(got)] {
		t.Errorf("query snapshot generation %q does not match the reloaded repo", got)
	}
	if _, ok := second.site.Pages["activities/findsmallestcard/index.html"]; ok {
		t.Error("deleted activity still present after reload")
	}
	stats := b.LastStats()
	if stats.CacheHits == 0 {
		t.Errorf("incremental reload had no cache hits: %+v", stats)
	}

	// A broken corpus keeps the previous site live.
	bad := filepath.Join(dir, "broken.md")
	if err := os.WriteFile(bad, []byte("---\ntitle: unterminated frontmatter\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reloadSite(st, b, dir); err == nil {
		t.Fatal("reload of broken corpus should error")
	}
	if cur.Load() != second {
		t.Error("failed reload must not swap the live site")
	}
	if out := st.health.rebuild.Load(); out == nil || out.OK || out.Error == "" {
		t.Errorf("rebuild outcome after failure = %+v", out)
	}
}

func TestServeWatchRequiresSrc(t *testing.T) {
	err := run([]string{"serve", "-watch"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-watch requires -src") {
		t.Errorf("serve -watch without -src: err = %v", err)
	}
}

// TestServeQueryAPI exercises the mounted /api/v1/ tree end to end
// through the serve mux: correct JSON bodies, and the query middleware
// counting requests under the /api route label.
func TestServeQueryAPI(t *testing.T) {
	mux, _, qsvc := serveTestMuxQuery(t, false)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var sr query.SearchResponse
	getJSON(t, srv.URL+"/api/v1/search?q=byzantine", &sr)
	if sr.Count == 0 || sr.Results[0].Slug != "byzantine-generals" {
		t.Errorf("search response: %+v", sr)
	}
	if sr.Generation != qsvc.Snapshot().Generation {
		t.Errorf("search generation %q, want %q", sr.Generation, qsvc.Snapshot().Generation)
	}

	var ar query.ActivitiesResponse
	getJSON(t, srv.URL+"/api/v1/activities?course=CS1&medium=cards", &ar)
	if ar.Count == 0 || ar.Count != len(ar.Activities) {
		t.Errorf("activities response: count=%d len=%d", ar.Count, len(ar.Activities))
	}
	for _, a := range ar.Activities {
		if !contains(a.Courses, "CS1") || !contains(a.Medium, "cards") {
			t.Errorf("activity %s escaped the facet filter: %+v", a.Slug, a)
		}
	}

	var fr query.FacetsResponse
	getJSON(t, srv.URL+"/api/v1/facets", &fr)
	if fr.Activities == 0 || len(fr.Facets["course"]) == 0 || len(fr.Facets["tcpp"]) == 0 {
		t.Errorf("facets response: %+v", fr)
	}

	// The repeated query above is a cache hit, observable through the
	// real /metrics exposition mounted next to the site.
	var sr2 query.SearchResponse
	getJSON(t, srv.URL+"/api/v1/search?q=byzantine", &sr2)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`pdcu_query_cache_total{endpoint="search",result="hit"}`,
		`pdcu_query_cache_total{endpoint="search",result="miss"}`,
		`pdcu_query_requests_total{endpoint="search",code="200"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestServeQuerySwapUnderLoad hammers /api/v1/search from several
// goroutines while the main goroutine repeatedly mutates the corpus and
// swaps new sites in through reloadSite, as the -watch loop would. Run
// under -race by `make check`. It pins three properties: the load never
// produces a 5xx, every swap is immediately visible to the next query
// (no stale-generation cache hit can outlive a swap), and each observed
// generation is one that was actually published.
func TestServeQuerySwapUnderLoad(t *testing.T) {
	dir := writeCorpus(t)
	b := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{})
	cur := &atomic.Pointer[liveSite]{}
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	qsvc := query.New(query.NewSnapshot(repo), query.Options{})
	st := newTestServeState(cur, qsvc)
	if err := reloadSite(st, b, dir); err != nil {
		t.Fatal(err)
	}
	mux := serveMux(st, false)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	published := sync.Map{} // generation -> true, recorded before workers can observe it
	published.Store(qsvc.Snapshot().Generation, true)

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queries := []string{"odd-even", "byzantine", "token ring", "sorting cards"}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/api/v1/search?q=" + strings.ReplaceAll(queries[n%len(queries)], " ", "+"))
				if err != nil {
					errc <- err
					return
				}
				var sr query.SearchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					errc <- fmt.Errorf("query returned %d", resp.StatusCode)
					return
				}
				if decErr != nil {
					errc <- decErr
					return
				}
				if _, ok := published.Load(sr.Generation); !ok {
					errc <- fmt.Errorf("observed unpublished generation %q", sr.Generation)
					return
				}
			}
		}()
	}

	victim := filepath.Join(dir, "findsmallestcard.md")
	original, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		// Alternate removing and restoring one activity so every swap
		// changes the fingerprint.
		if i%2 == 0 {
			if err := os.Remove(victim); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := os.WriteFile(victim, original, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Record the generation this corpus will publish as *before*
		// swapping, so workers can never observe an unknown one.
		next, err := pdcunplugged.LoadFS(os.DirFS(dir), ".")
		if err != nil {
			t.Fatal(err)
		}
		published.Store(query.NewSnapshot(next).Generation, true)
		if err := reloadSite(st, b, dir); err != nil {
			t.Fatal(err)
		}
		// A query issued after the swap must see the new generation:
		// the generation-keyed cache cannot serve a stale hit.
		var sr query.SearchResponse
		getJSON(t, srv.URL+"/api/v1/search?q=odd-even", &sr)
		if want := qsvc.Snapshot().Generation; sr.Generation != want {
			t.Fatalf("swap %d: query served generation %q, want %q", i, sr.Generation, want)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
