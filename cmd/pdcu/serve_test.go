package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdcunplugged"
)

func serveTestMux(t *testing.T, withPprof bool) *http.ServeMux {
	t.Helper()
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		t.Fatal(err)
	}
	return serveMux(s, repo, withPprof)
}

func TestServeHealthz(t *testing.T) {
	srv := httptest.NewServer(serveTestMux(t, false))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var health struct {
		Status     string `json:"status"`
		Pages      int    `json:"pages"`
		Activities int    `json:"activities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Pages == 0 || health.Activities == 0 {
		t.Errorf("health = %+v", health)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(serveTestMux(t, false))
	defer srv.Close()

	// Generate site traffic, then scrape.
	for _, p := range []string{"/", "/views/tcpp/", "/no/such/page/"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, want := range []string{
		`pdcu_http_requests_total{path="/",code="200"}`,
		`pdcu_http_requests_total{path="/views",code="200"}`,
		`pdcu_http_requests_total{path="/no",code="404"}`,
		"# TYPE pdcu_http_request_duration_seconds histogram",
		`pdcu_phase_seconds_count{phase="site.build"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestServePprofGating(t *testing.T) {
	withoutPprof := httptest.NewServer(serveTestMux(t, false))
	defer withoutPprof.Close()
	resp, err := http.Get(withoutPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", resp.StatusCode)
	}

	withPprof := httptest.NewServer(serveTestMux(t, true))
	defer withPprof.Close()
	resp, err = http.Get(withPprof.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200", resp.StatusCode)
	}
}
