package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/fleet"
	"pdcunplugged/internal/obs/trace"
	"pdcunplugged/internal/replica"
)

// TestFleetObsSmoke is the fleet observability tier end to end, the way
// `make fleet-obs-smoke` gates it: a leader and a follower with the
// exact wiring cmdServe performs, then every acceptance surface in one
// run — the follower's fetch cycle and the leader's snapshot serve
// stitched into a single trace, /metrics/fleet carrying both nodes'
// series under node= labels, /readyz reporting replication role and
// position, and an induced SLO breach producing a downloadable pprof
// capture.
func TestFleetObsSmoke(t *testing.T) {
	// Leader: breach-triggered profiling on, with a CPU window short
	// enough for a test.
	leaderEng := builtEngine(t, func(c *engine.Config) {
		c.ProfileOnBreach = true
		c.ProfileCPU = 50 * time.Millisecond
	})
	rep := replica.NewLeader(leaderEng)
	leaderEng.SetPeerSource(func() []fleet.Peer {
		var peers []fleet.Peer
		for _, f := range rep.FleetStatus().Followers {
			if f.URL != "" {
				peers = append(peers, fleet.Peer{Node: f.Node, URL: f.URL})
			}
		}
		return peers
	})
	leaderEng.SetReadyExtra(func() map[string]any {
		return map[string]any{"role": "leader"}
	})
	lmux := leaderEng.Mux()
	// The middleware wrap is load-bearing: it is what records the
	// leader-side half of the follower's fetch trace.
	lmux.Handle("/replica/v1/", leaderEng.Middleware().Wrap(rep.Handler()))
	leaderSrv := httptest.NewServer(lmux)
	t.Cleanup(leaderSrv.Close)

	// Follower: own engine (own tracer, own rollup), advertising its
	// URL on heartbeats so the leader's fleet roster can scrape it.
	folEng := testEngine(t, nil)
	folEng.SetSelfNode("fleet-f1")
	folEng.SetPeerSource(func() []fleet.Peer {
		return []fleet.Peer{{Node: "leader", URL: leaderSrv.URL}}
	})
	fmux := folEng.Mux()
	fmux.Handle("/replica/v1/", replica.NewLeader(folEng).Handler())
	folSrv := httptest.NewServer(fmux)
	t.Cleanup(folSrv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fol := &replica.Follower{
		Eng:    folEng,
		Base:   leaderSrv.URL,
		Node:   "fleet-f1",
		Self:   folSrv.URL,
		Tracer: folEng.Tracer(),
	}
	folEng.SetReadyExtra(func() map[string]any {
		return map[string]any{"role": "follower", "replica_lag": fol.Lag()}
	})
	go fol.Run(ctx)

	waitConverged(t, leaderEng, folEng)

	// --- Cross-node trace stitching -----------------------------------

	// The follower recorded its fetch cycle as a trace; the same trace
	// ID must be retained on the leader, where the traceparent-carrying
	// snapshot GET recorded the serve-side span.
	var fetch trace.Data
	deadline := time.Now().Add(10 * time.Second)
	for fetch.ID.IsZero() && time.Now().Before(deadline) {
		for _, d := range folEng.Tracer().Store().List() {
			if d.Root == "replica.fetch" {
				fetch = d
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fetch.ID.IsZero() {
		t.Fatal("follower retained no replica.fetch trace")
	}
	leaderHalf, ok := leaderEng.Tracer().Store().Get(fetch.ID)
	if !ok {
		t.Fatalf("leader retained no half of follower trace %s", fetch.ID)
	}
	serveSpan := false
	for _, sp := range leaderHalf.Spans {
		if strings.Contains(sp.Name, "/replica/v1/snapshot") {
			serveSpan = true
		}
	}
	if !serveSpan {
		t.Fatalf("leader half has no snapshot-serve span: %+v", leaderHalf.Spans)
	}

	// The follower's trace view with ?remote=1 federates the leader's
	// half into one stitched waterfall.
	stitchedURL := folSrv.URL + "/debug/obs/traces/" + fetch.ID.String() + "?remote=1"
	resp, err := http.Get(stitchedURL)
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stitched view = %d: %s", resp.StatusCode, html)
	}
	for _, want := range []string{"replica.fetch", "/replica/v1/snapshot", "stitched"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("stitched waterfall missing %q:\n%s", want, html)
		}
	}
	resp, err = http.Get(stitchedURL + "&format=json")
	if err != nil {
		t.Fatal(err)
	}
	var wire trace.WireTrace
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(wire.Spans) <= len(fetch.Spans) {
		t.Errorf("stitched JSON has %d spans, local half alone has %d",
			len(wire.Spans), len(fetch.Spans))
	}

	// --- Metrics federation -------------------------------------------

	// The leader's roster comes from the follower's heartbeat (which
	// advertised folSrv.URL); one scrape federates both nodes.
	leaderEng.Fleet().ScrapeOnce(ctx)
	resp, err = http.Get(leaderSrv.URL + "/metrics/fleet")
	if err != nil {
		t.Fatal(err)
	}
	fed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/fleet = %d", resp.StatusCode)
	}
	for _, want := range []string{`node="leader"`, `node="fleet-f1"`} {
		if !strings.Contains(string(fed), want) {
			t.Errorf("/metrics/fleet missing %s", want)
		}
	}

	// --- /readyz replication extras -----------------------------------

	for srvURL, want := range map[string]string{
		leaderSrv.URL: `"role": "leader"`,
		folSrv.URL:    `"role": "follower"`,
	} {
		resp, err := http.Get(srvURL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz = %d: %s", resp.StatusCode, body)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("/readyz missing %s: %s", want, body)
		}
	}
	resp, err = http.Get(folSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"replica_lag"`) {
		t.Errorf("follower /readyz missing replica_lag: %s", body)
	}

	// --- Breach-triggered profile capture ------------------------------

	// Induce the breach via the metrics themselves, not wall-clock
	// latency: observing over-threshold durations directly into the
	// query histogram is deterministic under the race detector's
	// slowdown. Registering the same family returns the existing one.
	hist := obs.Default().Histogram("pdcu_query_duration_seconds",
		"Query API request latency, by endpoint.", obs.QueryBuckets(), "endpoint")
	ru := leaderEng.Rollup()
	ru.Collect() // absorb process history into a pre-breach window
	for i := 0; i < 50000; i++ {
		hist.With("search").Observe(0.08) // 16x the 5ms objective
	}
	ru.Collect() // sample the all-bad window
	ru.Collect() // hooks run first: the SLO engine sees the breach here

	var capture fleet.Capture
	deadline = time.Now().Add(10 * time.Second)
	for capture.ID == "" && time.Now().Before(deadline) {
		for _, c := range leaderEng.Profiles().List() {
			if c.Trigger == "breach" && c.Err == "" {
				capture = c
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if capture.ID == "" {
		t.Fatalf("no breach-triggered capture appeared; ring: %+v", leaderEng.Profiles().List())
	}
	if capture.Context == "" || !strings.Contains(capture.Context, "query-latency") {
		t.Errorf("capture context %q does not name the breached objective", capture.Context)
	}

	// The capture is listed and downloadable over HTTP.
	resp, err = http.Get(leaderSrv.URL + "/debug/obs/profiles")
	if err != nil {
		t.Fatal(err)
	}
	list, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(list), capture.ID) {
		t.Errorf("/debug/obs/profiles does not list %s: %s", capture.ID, list)
	}
	resp, err = http.Get(leaderSrv.URL + "/debug/obs/profiles/" + capture.ID + "/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(prof) == 0 {
		t.Fatalf("goroutine profile download = %d, %d bytes", resp.StatusCode, len(prof))
	}
}
