//go:build race

package main

// raceEnabled mirrors the -race build tag so timing-sensitive gates can
// skip themselves under the race detector's 5-20x slowdown.
const raceEnabled = true
