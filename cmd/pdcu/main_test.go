package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdcunplugged"
	"pdcunplugged/internal/engine"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestUsageAndUnknown(t *testing.T) {
	if _, err := capture(t); err == nil {
		t.Error("missing command accepted")
	}
	if _, err := capture(t, "frobnicate"); err == nil {
		t.Error("unknown command accepted")
	}
	out, err := capture(t, "help")
	if err != nil || !strings.Contains(out, "coverage") {
		t.Errorf("help: %v %q", err, out)
	}
}

func TestList(t *testing.T) {
	out, err := capture(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "38 activities") || !strings.Contains(out, "findsmallestcard") {
		t.Errorf("list output: %q", out)
	}
	out, err = capture(t, "list", "-course", "CS1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "17 activities") {
		t.Errorf("CS1 filter: %q", out[:80])
	}
	out, err = capture(t, "list", "-sense", "sound", "-medium", "instrument")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 activities") || !strings.Contains(out, "orchestra-conductor") {
		t.Errorf("combined filter: %q", out)
	}
	out, err = capture(t, "list", "-ku", "PD_CloudComputing")
	if err != nil || !strings.Contains(out, "3 activities") {
		t.Errorf("ku filter: %v %q", err, out)
	}
	out, err = capture(t, "list", "-area", "TCPP_Architecture")
	if err != nil || !strings.Contains(out, "9 activities") {
		t.Errorf("area filter: %v %q", err, out)
	}
}

func TestShowAndSearch(t *testing.T) {
	out, err := capture(t, "show", "juice-sweetening-race")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Juice-Sweetening Robots") || !strings.Contains(out, "## Details") {
		t.Errorf("show output: %q", out[:120])
	}
	if _, err := capture(t, "show", "nope"); err == nil {
		t.Error("show accepted unknown slug")
	}
	if _, err := capture(t, "show"); err == nil {
		t.Error("show without slug accepted")
	}
	out, err = capture(t, "search", "byzantine")
	if err != nil || !strings.Contains(out, "byzantine-generals") {
		t.Errorf("search: %v %q", err, out)
	}
	out, err = capture(t, "search", "zebra-unicorn")
	if err != nil || !strings.Contains(out, "no matches") {
		t.Errorf("empty search: %v %q", err, out)
	}
}

func TestCoverageAndStats(t *testing.T) {
	out, err := capture(t, "coverage")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE I", "TABLE II", "Parallel Decomposition", "45.45", "SUB-CATEGORY"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage missing %q", want)
		}
	}
	out, err = capture(t, "stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"K_12", "analogy", "visual", "71.05", "External resources: 16/38", "Assessed: 6/38"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q", want)
		}
	}
}

func TestGapsAndImpact(t *testing.T) {
	out, err := capture(t, "gaps")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PF_3", "K_WebSearch", "A_Broadcast"} {
		if !strings.Contains(out, want) {
			t.Errorf("gaps missing %q", want)
		}
	}
	out, err = capture(t, "impact", "-tcppdetails", "A_Broadcast,A_ScatterGather", "-cs2013details", "PD_2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "impact score: 2") {
		t.Errorf("impact: %q", out)
	}
	if _, err := capture(t, "impact", "-cs2013details", "ZZ_1"); err == nil {
		t.Error("bad detail term accepted")
	}
}

func TestNewTemplate(t *testing.T) {
	out, err := capture(t, "new", "My", "Activity")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `title: "My Activity"`) || !strings.Contains(out, "## Citations") {
		t.Errorf("new: %q", out)
	}
}

func TestExportValidateBuild(t *testing.T) {
	dir := t.TempDir()
	contentDir := filepath.Join(dir, "content")
	out, err := capture(t, "export", "-out", contentDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 38 activities") {
		t.Errorf("export: %q", out)
	}
	out, err = capture(t, "validate", contentDir)
	if err != nil {
		t.Fatalf("validate failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "38 files checked, 0 problems") {
		t.Errorf("validate: %q", out)
	}
	// Corrupt one file: validation must fail.
	bad := filepath.Join(contentDir, "findsmallestcard.md")
	if err := os.WriteFile(bad, []byte("---\ntitle: \"X\"\ncourses: [\"CS9\"]\n---\n\n## Original Author/link\n\nA\n\n## Details\n\nD\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, "validate", contentDir)
	if err == nil {
		t.Errorf("validate accepted bad file:\n%s", out)
	}
	// Build from the embedded corpus.
	siteDir := filepath.Join(dir, "public")
	out, err = capture(t, "build", "-out", siteDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "from 38 activities") {
		t.Errorf("build: %q", out)
	}
	if _, err := os.Stat(filepath.Join(siteDir, "index.html")); err != nil {
		t.Error("build wrote no index.html")
	}
}

func TestBuildFromSrcDir(t *testing.T) {
	dir := t.TempDir()
	files := pdcunplugged.CorpusFiles()
	if err := os.WriteFile(filepath.Join(dir, "findsmallestcard.md"), []byte(files["findsmallestcard"]), 0o644); err != nil {
		t.Fatal(err)
	}
	siteDir := filepath.Join(dir, "out")
	out, err := capture(t, "build", "-src", dir, "-out", siteDir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "from 1 activities") {
		t.Errorf("build -src: %q", out)
	}
	// An explicit pool size flows through to the build stats.
	out, err = capture(t, "build", "-src", dir, "-out", siteDir, "-j", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 workers") {
		t.Errorf("build -j 2: %q", out)
	}
}

func TestSimCommands(t *testing.T) {
	out, err := capture(t, "sim", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"findsmallestcard", "tokenring", "collectives"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim list missing %q", want)
		}
	}
	out, err = capture(t, "sim", "run", "oddeven", "-n", "12", "-seed", "3", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "oddeven [ok]") || !strings.Contains(out, "[round") {
		t.Errorf("sim run: %q", out)
	}
	out, err = capture(t, "sim", "run", "byzantine", "-param", "traitors=1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	out, err = capture(t, "sim", "run", "oddeven", "-n", "8", "-json", "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"activity": "oddeven"`) || !strings.Contains(out, `"trace"`) {
		t.Errorf("sim -json output: %.200q", out)
	}
	if _, err := capture(t, "sim", "run", "nope"); err == nil {
		t.Error("unknown sim accepted")
	}
	if _, err := capture(t, "sim", "run", "oddeven", "-param", "bad"); err == nil {
		t.Error("malformed param accepted")
	}
	if _, err := capture(t, "sim"); err == nil {
		t.Error("bare sim accepted")
	}
	out, err = capture(t, "sim", "sweep", "findsmallestcard", "-values", "8,16,32", "-metric", "rounds")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rounds vs participants") || !strings.Contains(out, "#") {
		t.Errorf("sweep plot: %q", out)
	}
	out, err = capture(t, "sim", "sweep", "findsmallestcard", "-values", "8,16", "-metric", "rounds", "-csv")
	if err != nil || !strings.Contains(out, "participants,rounds") {
		t.Errorf("sweep csv: %v %q", err, out)
	}
	if _, err := capture(t, "sim", "sweep", "findsmallestcard", "-values", "x", "-metric", "rounds"); err == nil {
		t.Error("bad grid accepted")
	}
	if _, err := capture(t, "sim", "sweep"); err == nil {
		t.Error("sweep without name accepted")
	}
	out, err = capture(t, "sim", "measure", "tokenring", "-metric", "stabilization_steps", "-runs", "10", "-n", "8")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "over 10 runs") || !strings.Contains(out, "median") {
		t.Errorf("measure output: %q", out)
	}
	if _, err := capture(t, "sim", "measure", "tokenring"); err == nil {
		t.Error("measure without metric accepted")
	}
	if _, err := capture(t, "sim", "measure"); err == nil {
		t.Error("measure without name accepted")
	}
	if _, err := capture(t, "sim", "frob"); err == nil {
		t.Error("unknown sim subcommand accepted")
	}
}

func TestBibCommands(t *testing.T) {
	out, err := capture(t, "bib")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bachelis1994bringing", "CITATION DATABASE", "kolikant2001gardeners"} {
		if !strings.Contains(out, want) {
			t.Errorf("bib listing missing %q", want)
		}
	}
	out, err = capture(t, "bib", "-export")
	if err != nil || !strings.Contains(out, "@article{") || !strings.Contains(out, "@inproceedings{") {
		t.Errorf("bib export: %v %.100q", err, out)
	}
	out, err = capture(t, "bib", "-shared")
	if err != nil || !strings.Contains(out, "bachelis1994bringing") || !strings.Contains(out, "- findsmallestcard") {
		t.Errorf("bib shared: %v %q", err, out)
	}
}

func TestReviewCommand(t *testing.T) {
	dir := t.TempDir()
	// A fresh, valid proposal covering a gap.
	good := `---
title: "Classroom Collectives"
cs2013: ["PD_CommunicationAndCoordination"]
cs2013details: ["PCC_4"]
tcpp: ["TCPP_Algorithms"]
tcppdetails: ["A_Broadcast"]
courses: ["CS2"]
senses: ["movement"]
medium: ["role-play"]
---

## Original Author/link

Proposal author

No external resources found. See details below.

---

## Details

Students form a tree and ripple a broadcast down level by level.

---

## Citations

- S. J. Matthews, "PDCunplugged," IPDPSW 2020.
`
	path := filepath.Join(dir, "classroom-collectives.md")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "review", path)
	if err != nil {
		t.Fatalf("review failed: %v\n%s", err, out)
	}
	for _, want := range []string{"ACCEPT", "impact: 2", "merge preview", "39 activities"} {
		if !strings.Contains(out, want) {
			t.Errorf("review output missing %q:\n%s", want, out)
		}
	}
	// A broken submission must fail.
	bad := filepath.Join(dir, "broken.md")
	if err := os.WriteFile(bad, []byte("no front matter"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := capture(t, "review", bad); err == nil {
		t.Errorf("broken submission accepted:\n%s", out)
	}
	if _, err := capture(t, "review"); err == nil {
		t.Error("review without file accepted")
	}
	if _, err := capture(t, "review", "/no/such.md"); err == nil {
		t.Error("review of missing file accepted")
	}
}

func TestMatrixCommand(t *testing.T) {
	out, err := capture(t, "matrix")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"COURSE x KNOWLEDGE UNIT", "COURSE x TCPP AREA", "K_12", "Systems"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q", want)
		}
	}
}

func TestReviewUpdatePath(t *testing.T) {
	dir := t.TempDir()
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := repo.Get("findsmallestcard")
	edited := *a
	edited.Assessment = "Classroom pre/post quiz showed strong gains."
	path := filepath.Join(dir, "findsmallestcard.md")
	if err := os.WriteFile(path, []byte(edited.Render()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "review", path)
	if err != nil {
		t.Fatalf("update review failed: %v\n%s", err, out)
	}
	for _, want := range []string{"update review", "APPLY", "welcomed", "assessment added", "update preview"} {
		if !strings.Contains(out, want) {
			t.Errorf("update review missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineCommand(t *testing.T) {
	out, err := capture(t, "timeline")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1990s", "2010s", "BLOOM", "Comprehend"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestSearchRanked(t *testing.T) {
	out, err := capture(t, "search", "token", "ring", "stabilizing")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[0], "selfstabilizing-token-ring") {
		t.Errorf("top hit wrong:\n%s", out)
	}
	out, err = capture(t, "search", "sortin")
	if err != nil || !strings.Contains(out, "no matches") || !strings.Contains(out, "did you mean") {
		t.Errorf("suggestion missing: %v %q", err, out)
	}
}

func TestAssessCommand(t *testing.T) {
	out, err := capture(t, "assess", "findsmallestcard")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Assessment: FindSmallestCard", "Q1", "PD_2"} {
		if !strings.Contains(out, want) {
			t.Errorf("assess missing %q", want)
		}
	}
	out, err = capture(t, "assess", "findsmallestcard", "-simulate", "20")
	if err != nil || !strings.Contains(out, "normalized gain") {
		t.Errorf("assess -simulate: %v (output %d bytes)", err, len(out))
	}
	if _, err := capture(t, "assess", "nope"); err == nil {
		t.Error("assess of unknown slug accepted")
	}
	if _, err := capture(t, "assess"); err == nil {
		t.Error("assess without slug accepted")
	}
}

func TestPlanCommand(t *testing.T) {
	out, err := capture(t, "plan", "-course", "CS1", "-slots", "3", "-avoid", "food")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "workshop plan: 3 activities") || !strings.Contains(out, "reaches") {
		t.Errorf("plan output: %q", out)
	}
	if _, err := capture(t, "plan", "-course", "CS0", "-senses", "sound"); err == nil {
		t.Error("impossible plan accepted")
	}
	out, err = capture(t, "plan", "-course", "K_12", "-slots", "2", "-handout")
	if err != nil || !strings.Contains(out, "# Workshop plan") || !strings.Contains(out, "## Bring") {
		t.Errorf("handout: %v %.120q", err, out)
	}
}

// TestFlagValidationRejections pins the centralized Config.Validate
// path at the CLI surface: out-of-range values are rejected with an
// error naming the flag, uniformly across build and serve.
func TestFlagValidationRejections(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"build -j 0", []string{"build", "-out", t.TempDir(), "-j", "0"}, "-j must be >= 1"},
		{"build -j negative", []string{"build", "-out", t.TempDir(), "-j", "-3"}, "-j must be >= 1"},
		{"serve -rate negative", []string{"serve", "-rate", "-1"}, "-rate must be >= 0"},
		{"serve -burst negative", []string{"serve", "-burst", "-2"}, "-burst must be >= 0"},
		{"serve -trace-sample above one", []string{"serve", "-trace-sample", "2"}, "-trace-sample must be in [0,1]"},
		{"serve -trace-sample negative", []string{"serve", "-trace-sample", "-0.5"}, "-trace-sample must be in [0,1]"},
		{"serve -poll zero", []string{"serve", "-src", t.TempDir(), "-poll", "0s"}, "-poll must be > 0"},
		{"serve bad -log-level", []string{"serve", "-log-level", "shouty"}, "-log-level"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := capture(t, tc.args...)
			if err == nil {
				t.Fatalf("accepted %v:\n%s", tc.args, out)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestUnifiedFingerprint pins the deduplicated repository entry point
// across commands: for the same corpus, the generation tag printed by
// `build` equals the one reported by `search -json`.
func TestUnifiedFingerprint(t *testing.T) {
	dir := t.TempDir()
	files := pdcunplugged.CorpusFiles()
	if err := os.WriteFile(filepath.Join(dir, "findsmallestcard.md"), []byte(files["findsmallestcard"]), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, "build", "-src", dir, "-out", filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	_, rest, ok := strings.Cut(out, "generation ")
	if !ok {
		t.Fatalf("build output has no generation tag: %q", out)
	}
	buildGen := strings.Trim(strings.TrimSpace(rest), ")")

	out, err = capture(t, "search", "-src", dir, "-json", "smallest")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Generation string `json:"generation"`
	}
	if err := json.Unmarshal([]byte(out), &sr); err != nil {
		t.Fatalf("search -json: %v\n%s", err, out)
	}
	if sr.Generation == "" || sr.Generation != buildGen {
		t.Errorf("search generation %q != build generation %q", sr.Generation, buildGen)
	}

	// The serve path publishes the same identity through the engine.
	eng, err := engine.New(func() engine.Config { c := engine.Defaults(); c.Srcs = engine.DirSources(dir); return c }())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := eng.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen.ID != buildGen {
		t.Errorf("engine generation %q != build generation %q", gen.ID, buildGen)
	}
}

func TestServeBadSource(t *testing.T) {
	// serve fails before binding when the source directory is invalid.
	if _, err := capture(t, "serve", "-src", "/no/such/dir"); err == nil {
		t.Error("serve with missing source accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := capture(t, "validate"); err == nil {
		t.Error("validate without dir accepted")
	}
	if _, err := capture(t, "validate", "/no/such/dir"); err == nil {
		t.Error("validate of missing dir accepted")
	}
}
