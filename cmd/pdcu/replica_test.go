package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdcunplugged/internal/activity"
	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/replica"
	"pdcunplugged/internal/search"
)

// replicaNode is one serving process in miniature: an engine, its mux
// with the /replica/v1/ tree mounted (every node can relay snapshots),
// and an httptest listener — the same wiring cmdServe performs.
type replicaNode struct {
	eng *engine.Engine
	srv *httptest.Server
}

func newReplicaNode(t *testing.T, eng *engine.Engine) *replicaNode {
	t.Helper()
	mux := eng.Mux()
	mux.Handle("/replica/v1/", replica.NewLeader(eng).Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &replicaNode{eng: eng, srv: srv}
}

func (n *replicaNode) get(t *testing.T, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(n.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Pdcu-Generation"), body
}

func waitConverged(t *testing.T, leader *engine.Engine, followers ...*engine.Engine) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		want := leader.Current().Seq
		n := 0
		for _, f := range followers {
			if g := f.Current(); g != nil && g.Seq == want {
				n++
			}
		}
		if n == len(followers) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("followers did not converge to leader seq %d", leader.Current().Seq)
}

// TestReplicaSmoke is the replication tier end to end, the way `make
// replica-smoke` gates it: a leader and two followers (one chained off
// the other, exercising the relay topology), a mid-test corpus edit,
// and the assertion that every probe surface — query API, site pages —
// serves byte-identical, generation-tagged responses from all three
// nodes, with neither follower ever parsing Markdown or building an
// index.
func TestReplicaSmoke(t *testing.T) {
	dir := writeCorpus(t)
	leader := newReplicaNode(t, builtEngine(t, func(c *engine.Config) { c.Srcs = engine.DirSources(dir) }))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	f1 := newReplicaNode(t, testEngine(t, nil))
	go (&replica.Follower{Eng: f1.eng, Base: leader.srv.URL, Node: "f1"}).Run(ctx)
	// f2 follows f1, not the leader: the snapshot it receives was
	// re-encoded by a follower, so this only passes if the codec is
	// deterministic end to end.
	f2 := newReplicaNode(t, testEngine(t, nil))
	go (&replica.Follower{Eng: f2.eng, Base: f1.srv.URL, Node: "f2"}).Run(ctx)

	waitConverged(t, leader.eng, f1.eng, f2.eng)

	probes := []string{
		"/api/v1/search?q=parallel+sorting",
		"/api/v1/activities?course=CS1",
		"/api/v1/facets",
		"/",
		"/activities/findsmallestcard/",
	}
	checkProbes := func(when string) {
		t.Helper()
		wantGen := leader.eng.Current().ID
		for _, p := range probes {
			code, gen, want := leader.get(t, p)
			if code != http.StatusOK {
				t.Fatalf("%s: leader %s = %d, want 200", when, p, code)
			}
			if gen != wantGen {
				t.Fatalf("%s: leader %s tagged %q, want %q", when, p, gen, wantGen)
			}
			for name, node := range map[string]*replicaNode{"f1": f1, "f2": f2} {
				code, gen, got := node.get(t, p)
				if code != http.StatusOK {
					t.Fatalf("%s: %s %s = %d, want 200", when, name, p, code)
				}
				if gen != wantGen {
					t.Errorf("%s: %s %s tagged %q, want %q", when, name, p, gen, wantGen)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%s: %s %s body differs from leader (%d vs %d bytes)", when, name, p, len(got), len(want))
				}
			}
		}
	}
	checkProbes("gen1")
	parseBefore, buildBefore := activity.ParseCalls(), search.BuildCalls()

	// Mid-test corpus edit: touch one activity, rebuild on the leader,
	// and the whole tree converges to the new generation.
	victim := filepath.Join(dir, "findsmallestcard.md")
	content, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(content, []byte("## Details"),
		[]byte("## Details\n\nReplication smoke edit."), 1)
	if bytes.Equal(edited, content) {
		t.Fatalf("corpus edit did not change %s", victim)
	}
	if err := os.WriteFile(victim, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	gen1 := leader.eng.Current().ID
	if _, err := leader.eng.Rebuild(ctx); err != nil {
		t.Fatal(err)
	}
	if leader.eng.Current().ID == gen1 {
		t.Fatal("corpus edit did not change the generation")
	}
	waitConverged(t, leader.eng, f1.eng, f2.eng)
	checkProbes("gen2")

	// Only the leader's rebuild pays pipeline cost: its corpus reload
	// parses every .md file once, its index builds once. The two
	// followers adopted the same generation twice without either.
	if n, want := activity.ParseCalls()-parseBefore, int64(leader.eng.Current().Repo.Len()); n != want {
		t.Errorf("activity.Parse ran %d times; only the leader's reload may parse (want %d)", n, want)
	}
	if n := search.BuildCalls() - buildBefore; n != 1 {
		t.Errorf("search.Build ran %d times; only the leader's rebuild may build (want 1)", n)
	}

	// The leader's fleet knows f1; f1's fleet knows f2.
	code, _, body := leader.get(t, "/replica/v1/fleet")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"f1"`)) {
		t.Errorf("leader fleet = %d %s, want f1 listed", code, body)
	}
	code, _, body = f1.get(t, "/replica/v1/fleet")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"f2"`)) {
		t.Errorf("f1 fleet = %d %s, want f2 listed", code, body)
	}
}

// TestColdStartFromSnapshotDir pins the cold-start acceptance bar: with
// a warm -snapshot-dir, a fresh process reaches /readyz 200 without
// invoking the Markdown parser or the index builder.
func TestColdStartFromSnapshotDir(t *testing.T) {
	snapDir := t.TempDir()
	gen := func() *engine.Generation {
		eng := builtEngine(t, func(c *engine.Config) { c.Srcs = engine.DirSources(writeCorpus(t)) })
		g := eng.Current()
		data, err := replica.Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := replica.Save(snapDir, data); err != nil {
			t.Fatal(err)
		}
		return g
	}()

	// "Restart": a brand-new engine, no corpus configured, booted only
	// from the snapshot directory — the cmdServe cold-start path.
	parseBefore, buildBefore := activity.ParseCalls(), search.BuildCalls()
	eng := testEngine(t, nil)
	loaded, _, err := replica.Load(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil || !eng.Adopt(loaded) {
		t.Fatal("cold start did not adopt the cached snapshot")
	}
	if n := activity.ParseCalls() - parseBefore; n != 0 {
		t.Errorf("cold start invoked activity.Parse %d times", n)
	}
	if n := search.BuildCalls() - buildBefore; n != 0 {
		t.Errorf("cold start invoked search.Build %d times", n)
	}

	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after cold start = %d (%s), want 200", resp.StatusCode, body)
	}
	if want := fmt.Sprintf("%q", gen.ID); !bytes.Contains(body, []byte(want)) {
		t.Errorf("/readyz = %s, want generation %s", body, want)
	}
}

// TestGenerationHeaderOnAllSurfaces pins the Pdcu-Generation response
// header across both serving surfaces and both status codes: the query
// API and the static site each tag 200s AND 304s, so a conditional
// revalidation is attributable to a generation without refetching.
func TestGenerationHeaderOnAllSurfaces(t *testing.T) {
	eng := builtEngine(t, nil)
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()
	want := eng.Current().ID

	for _, path := range []string{"/api/v1/search?q=parallel", "/api/v1/facets", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Pdcu-Generation"); got != want {
			t.Errorf("%s 200 Pdcu-Generation = %q, want %q", path, got, want)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s carried no ETag", path)
		}

		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("If-None-Match", etag)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s conditional = %d, want 304", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Pdcu-Generation"); got != want {
			t.Errorf("%s 304 Pdcu-Generation = %q, want %q", path, got, want)
		}
	}
}
