// Command pdcu is the PDCunplugged toolbox: browse the curated corpus,
// regenerate the paper's coverage tables, find curriculum gaps, scaffold
// and validate new activities, build or serve the static site, and run the
// goroutine dramatizations.
//
// The build, serve, and search commands are thin shells over
// internal/engine: they resolve a layered Config (defaults ← PDCU_* env
// ← flags), hand it to the engine, and print results. All lifecycle
// state — loading, site building, index building, publishing — lives in
// the engine.
//
// Usage:
//
//	pdcu list [-course CS1] [-sense touch] [-medium cards] [-ku TERM] [-area TERM]
//	pdcu show <slug>
//	pdcu search [-json] [-limit N] [-src DIR] <query>
//	pdcu coverage
//	pdcu stats
//	pdcu gaps
//	pdcu impact [-cs2013details PD_6,...] [-tcppdetails A_Broadcast,...]
//	pdcu new <title>
//	pdcu validate <dir>
//	pdcu export -out DIR
//	pdcu build -out DIR [-j N] [-verbose]
//	pdcu serve -addr :8080 [-src DIR -watch [-poll D]] [-follow URL] [-snapshot-dir DIR] [-rate R -burst B] [-pprof] [-verbose]
//	pdcu loadtest [-target URL[,URL...]] [-mix M] [-qps N] [-c N] [-duration D] [-churn D] [-baseline F | -gate F] [-json]
//	pdcu sim list
//	pdcu sim run <name> [-n N] [-workers W] [-seed S] [-trace] [-param k=v ...]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pdcunplugged"
	"pdcunplugged/internal/activity"
	"pdcunplugged/internal/coverage"
	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/query"
	"pdcunplugged/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdcu:", err)
		os.Exit(1)
	}
}

// run dispatches a subcommand; all output goes to w so tests can capture it.
func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return cmdList(rest, w)
	case "show":
		return cmdShow(rest, w)
	case "search":
		return cmdSearch(rest, w)
	case "coverage":
		return cmdCoverage(rest, w)
	case "stats":
		return cmdStats(rest, w)
	case "gaps":
		return cmdGaps(rest, w)
	case "impact":
		return cmdImpact(rest, w)
	case "new":
		return cmdNew(rest, w)
	case "validate":
		return cmdValidate(rest, w)
	case "export":
		return cmdExport(rest, w)
	case "build":
		return cmdBuild(rest, w)
	case "serve":
		return cmdServe(rest, w)
	case "loadtest":
		return cmdLoadtest(rest, w)
	case "sim":
		return cmdSim(rest, w)
	case "bib":
		return cmdBib(rest, w)
	case "review":
		return cmdReview(rest, w)
	case "timeline":
		return cmdTimeline(rest, w)
	case "assess":
		return cmdAssess(rest, w)
	case "matrix":
		return cmdMatrix(rest, w)
	case "plan":
		return cmdPlan(rest, w)
	case "help", "-h", "--help":
		fmt.Fprint(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

const usage = `pdcu <command> [flags]

Commands:
  list      list activities, filterable by taxonomy terms
  show      print one activity's Markdown
  search    full-text search over titles, authors and details
  coverage  regenerate Tables I and II plus sub-category coverage
  stats     course, medium, sense and resource statistics
  gaps      list uncovered learning outcomes and topics
  impact    score a proposed activity's coverage impact
  new       print a fresh activity template (Fig. 1)
  validate  load and validate a directory of activity .md files
  export    write the curated corpus as Markdown files
  build     render the static site to a directory
  serve     serve the static site for local preview
  loadtest  replay a weighted traffic mix; record or gate a benchmark baseline
  sim       list or run activity dramatizations
  bib       list the citation database, export BibTeX, or show shared sources
  review    curator-review a contributed activity .md file
  timeline  activities per source decade (thirty years of literature)
  assess    generate a pre/post assessment sheet for an activity
  plan      build a maximum-coverage workshop plan under constraints
  matrix    course x knowledge-unit and course x topic-area activity matrices
`

func usageError() error { return fmt.Errorf("missing command\n%s", usage) }

func openRepo() (*pdcunplugged.Repository, error) {
	return pdcunplugged.Open()
}

func cmdList(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	course := fs.String("course", "", "filter by course term (e.g. CS1)")
	sense := fs.String("sense", "", "filter by sense term (e.g. touch)")
	medium := fs.String("medium", "", "filter by medium term (e.g. cards)")
	ku := fs.String("ku", "", "filter by cs2013 term")
	area := fs.String("area", "", "filter by tcpp term")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	acts := repo.All()
	filter := func(keep func(a *pdcunplugged.Activity) bool) {
		var out []*pdcunplugged.Activity
		for _, a := range acts {
			if keep(a) {
				out = append(out, a)
			}
		}
		acts = out
	}
	if *course != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.Courses, *course) })
	}
	if *sense != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.Senses, *sense) })
	}
	if *medium != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.Medium, *medium) })
	}
	if *ku != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.CS2013, *ku) })
	}
	if *area != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.TCPP, *area) })
	}
	tb := report.New(fmt.Sprintf("%d activities", len(acts)), "Slug", "Title", "Courses", "Materials")
	for _, a := range acts {
		mat := ""
		if a.HasExternalResources() {
			mat = "yes"
		}
		tb.AddRow(a.Slug, a.Title, strings.Join(a.Courses, ","), mat)
	}
	fmt.Fprint(w, tb.String())
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func cmdShow(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pdcu show <slug>")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	a, ok := repo.Get(args[0])
	if !ok {
		return fmt.Errorf("no activity %q; try 'pdcu list'", args[0])
	}
	fmt.Fprint(w, a.Render())
	return nil
}

// cmdSearch loads the corpus through the engine — the same entry point
// build and serve use — so the generation reported by `search -json`
// matches what the other commands would publish for the same corpus.
func cmdSearch(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	cfg, err := engine.FromEnv()
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	cfg.BindSearchFlags(fs)
	asJSON := fs.Bool("json", false, "emit results as JSON (the /api/v1/search response shape)")
	limit := fs.Int("limit", 10, "maximum results (0 = all)")
	fuzzy := fs.Bool("fuzzy", false, "expand misspelled query terms to edit-distance-1 vocabulary neighbors")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: pdcu search [-json] [-fuzzy] [-limit N] <query>")
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return fmt.Errorf("search: %w", err)
	}
	repo, err := eng.Load(context.Background())
	if err != nil {
		return err
	}
	snap := query.NewSnapshot(repo)
	resp := query.SearchWith(snap, strings.Join(fs.Args(), " "), *limit, *fuzzy)
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	for _, h := range resp.Results {
		fmt.Fprintf(w, "%6.3f  %-32s %s\n", h.Score, h.Slug, h.Title)
	}
	if len(resp.Results) == 0 {
		fmt.Fprintln(w, "no matches")
		if sugg := snap.Index.Suggest(fs.Arg(0), 5); len(sugg) > 0 {
			fmt.Fprintf(w, "did you mean: %s\n", strings.Join(sugg, ", "))
		}
	}
	return nil
}

func cmdBib(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bib", flag.ContinueOnError)
	export := fs.Bool("export", false, "emit BibTeX instead of a listing")
	shared := fs.Bool("shared", false, "show sources cited by multiple activities (variation clusters)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *export {
		fmt.Fprint(w, pdcunplugged.ExportBibTeX(nil))
		return nil
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	if *shared {
		g := pdcunplugged.BuildCitationGraph(repo)
		cur := ""
		for _, link := range g.SharedSources() {
			if link.Ref.Key != cur {
				cur = link.Ref.Key
				fmt.Fprintf(w, "%s (%d): %s\n", link.Ref.Key, link.Ref.Year, link.Ref.Title)
			}
			fmt.Fprintf(w, "  - %s\n", link.Slug)
		}
		return nil
	}
	g := pdcunplugged.BuildCitationGraph(repo)
	tb := report.New("CITATION DATABASE", "Key", "Year", "Cited by", "Title")
	for _, ref := range pdcunplugged.Bibliography() {
		tb.AddRow(ref.Key, ref.Year, len(g.ByRef[ref.Key]), ref.Title)
	}
	fmt.Fprint(w, tb.String())
	if len(g.Unresolved) > 0 {
		fmt.Fprintf(w, "unresolved citations: %d\n", len(g.Unresolved))
	}
	return nil
}

func cmdReview(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pdcu review <file.md>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	slug := strings.TrimSuffix(filepath.Base(args[0]), ".md")
	repo, err := openRepo()
	if err != nil {
		return err
	}
	if _, exists := repo.Get(slug); exists {
		// Augmentation path: reviewing an edit to an existing activity.
		rev := pdcunplugged.ReviewUpdate(repo, slug, string(data))
		fmt.Fprint(w, rev.Summary())
		if !rev.Accepted() {
			return fmt.Errorf("update needs work (%d errors)", len(rev.Errors))
		}
		_, delta, err := pdcunplugged.ApplyUpdate(repo, rev.Activity)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "update preview: %s\n", delta)
		return nil
	}
	rev := pdcunplugged.ReviewSubmission(repo, slug, string(data))
	fmt.Fprint(w, rev.Summary())
	if !rev.Accepted() {
		return fmt.Errorf("submission needs work (%d errors)", len(rev.Errors))
	}
	merged, delta, err := pdcunplugged.MergeActivity(repo, rev.Activity)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "merge preview: %s (repository would hold %d activities)\n", delta, merged.Len())
	return nil
}

func cmdAssess(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("assess", flag.ContinueOnError)
	simulate := fs.Int("simulate", 0, "also run an item analysis over a synthetic class of this size")
	seed := fs.Int64("seed", 1, "seed for the synthetic class")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu assess <slug> [-simulate N]")
	}
	slug := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	a, ok := repo.Get(slug)
	if !ok {
		return fmt.Errorf("no activity %q", slug)
	}
	sheet, err := pdcunplugged.GenerateAssessment(a)
	if err != nil {
		return err
	}
	fmt.Fprint(w, sheet.Markdown())
	if *simulate > 0 {
		responses := pdcunplugged.SimulatedResponses(len(sheet.Items), *simulate, 0.6, *seed)
		analysis, err := pdcunplugged.AnalyzeAssessment(len(sheet.Items), responses)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Item analysis (synthetic class of %d)\n\n%s", *simulate, analysis.Summary())
	}
	return nil
}

func cmdPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	course := fs.String("course", "", "restrict to a course term (e.g. CS1)")
	senses := fs.String("senses", "", "comma-separated senses to engage (at least one)")
	avoid := fs.String("avoid", "", "comma-separated mediums to avoid")
	materials := fs.Bool("materials", false, "require external materials")
	slots := fs.Int("slots", 4, "number of activities")
	handout := fs.Bool("handout", false, "emit a Markdown instructor handout instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	p, err := pdcunplugged.BuildPlan(repo, pdcunplugged.PlanConstraints{
		Course:           *course,
		EngageSenses:     splitCSV(*senses),
		AvoidMediums:     splitCSV(*avoid),
		RequireMaterials: *materials,
		Slots:            *slots,
	})
	if err != nil {
		return err
	}
	if *handout {
		fmt.Fprint(w, p.Markdown(repo))
		return nil
	}
	fmt.Fprint(w, p.Summary())
	fmt.Fprintf(w, "reaches %.0f%% of the curation's covered terms\n", 100*p.CoverageRatio(repo))
	return nil
}

func cmdMatrix(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	kuOrder := []string{"PF", "PD", "PCC", "PAAP", "PA", "PP", "DS", "CC", "FMS"}
	headers := append([]string{"Course"}, kuOrder...)
	headers = append(headers, "Total")
	tb := report.New("ACTIVITIES PER COURSE x KNOWLEDGE UNIT", headers...)
	for _, row := range coverage.CourseUnitMatrix(repo) {
		cells := []interface{}{row.Course}
		for _, ku := range kuOrder {
			cells = append(cells, row.PerUnit[ku])
		}
		cells = append(cells, row.Total)
		tb.AddRow(cells...)
	}
	fmt.Fprint(w, tb.String())
	areaOrder := []string{"Architecture", "Programming", "Algorithms", "Crosscutting and Advanced Topics"}
	tb2 := report.New("ACTIVITIES PER COURSE x TCPP AREA", "Course", "Arch", "Prog", "Alg", "Cross", "Total")
	for _, row := range coverage.CourseAreaMatrix(repo) {
		cells := []interface{}{row.Course}
		for _, area := range areaOrder {
			cells = append(cells, row.PerArea[area])
		}
		cells = append(cells, row.Total)
		tb2.AddRow(cells...)
	}
	fmt.Fprint(w, tb2.String())
	return nil
}

func cmdTimeline(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	tb := report.New("ACTIVITIES PER SOURCE DECADE", "Decade", "Activities")
	for _, row := range pdcunplugged.Timeline(repo) {
		tb.AddRow(fmt.Sprintf("%ds", row.Decade), row.Activities)
	}
	fmt.Fprint(w, tb.String())
	tbb := report.New("TCPP COVERAGE BY BLOOM LEVEL", "Level", "Topics", "Covered", "Percent")
	for _, row := range pdcunplugged.BloomStats(repo) {
		tbb.AddRow(row.Level.String(), row.Topics, row.Covered, row.PercentCoverage())
	}
	fmt.Fprint(w, tbb.String())
	return nil
}

func cmdCoverage(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	t1 := report.New("TABLE I: CS2013 COVERAGE", "Knowledge Unit", "Num LOs", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableI(repo) {
		name := r.Unit.Name
		if r.Unit.Elective {
			name += " (E)"
		}
		t1.AddRow(name, r.NumOutcomes, r.CoveredOutcomes, r.PercentCoverage(), r.TotalActivities)
	}
	t2 := report.New("TABLE II: TCPP COVERAGE", "Topic Area", "Num Topics", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableII(repo) {
		t2.AddRow(r.Area.Name, r.NumTopics, r.CoveredTopics, r.PercentCoverage(), r.TotalActivities)
	}
	t3 := report.New("SUB-CATEGORY COVERAGE (Section III-C)", "Area", "Sub-category", "Topics", "Covered", "Percent")
	for _, r := range pdcunplugged.Subcategories(repo) {
		t3.AddRow(r.Area, r.Subcategory, r.NumTopics, r.CoveredTopics, r.PercentCoverage())
	}
	fmt.Fprintf(w, "%s\n%s\n%s", t1, t2, t3)
	return nil
}

func cmdStats(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	tb := report.New("ACTIVITIES PER COURSE", "Course", "Activities")
	for _, c := range pdcunplugged.CourseCounts(repo) {
		tb.AddRow(c.Term, c.Count)
	}
	tm := report.New("ACTIVITIES PER MEDIUM", "Medium", "Activities")
	for _, c := range pdcunplugged.MediumCounts(repo) {
		tm.AddRow(c.Term, c.Count)
	}
	ts := report.New("SENSES ENGAGED", "Sense", "Activities", "Percent")
	for _, s := range pdcunplugged.SenseStats(repo) {
		ts.AddRow(s.Sense, s.Count, s.Percent)
	}
	ct := coverage.MediumSenseCrossTab(repo)
	headers := append([]string{"Medium"}, ct.Senses...)
	tx := report.New("MEDIUM x SENSE", headers...)
	for _, m := range ct.Mediums {
		cells := []interface{}{m}
		for _, s := range ct.Senses {
			cells = append(cells, ct.Cell(m, s))
		}
		tx.AddRow(cells...)
	}
	res := coverage.Resources(repo)
	assessed, total := coverage.AssessmentStats(repo)
	fmt.Fprintf(w, "%s\n%s\n%s\n%s\n", tb, tm, ts, tx)
	fmt.Fprintf(w, "External resources: %d/%d activities (%.1f%%)\n", res.WithResources, res.Total, res.Percent())
	fmt.Fprintf(w, "Assessed: %d/%d activities\n", assessed, total)
	return nil
}

func cmdGaps(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	g := pdcunplugged.FindGaps(repo)
	fmt.Fprintf(w, "Uncovered CS2013 learning outcomes (%d):\n", len(g.Outcomes))
	for _, og := range g.Outcomes {
		fmt.Fprintf(w, "  %-8s [%s] %s\n", og.Term, og.Unit.Name, og.Outcome.Text)
	}
	fmt.Fprintf(w, "Uncovered TCPP core topics (%d):\n", len(g.Topics))
	for _, tg := range g.Topics {
		fmt.Fprintf(w, "  %-28s [%s / %s] %s\n", tg.Term, tg.Area.Name, tg.Topic.Subcategory, tg.Topic.Name)
	}
	return nil
}

func cmdImpact(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("impact", flag.ContinueOnError)
	csd := fs.String("cs2013details", "", "comma-separated outcome terms the proposed activity covers")
	tcd := fs.String("tcppdetails", "", "comma-separated topic terms the proposed activity covers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	score, novel, err := pdcunplugged.Impact(repo, splitCSV(*csd), splitCSV(*tcd))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "impact score: %d (novel terms: %s)\n", score, strings.Join(novel, ", "))
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func cmdNew(args []string, w io.Writer) error {
	title := "example"
	if len(args) > 0 {
		title = strings.Join(args, " ")
	}
	fmt.Fprint(w, pdcunplugged.ActivityTemplate(title))
	return nil
}

func cmdValidate(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pdcu validate <dir>")
	}
	dir := args[0]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	problems := 0
	checked := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		slug := strings.TrimSuffix(e.Name(), ".md")
		checked++
		a, err := activity.Parse(slug, string(data))
		if err != nil {
			problems++
			fmt.Fprintf(w, "FAIL %s: %v\n", e.Name(), err)
			continue
		}
		errs := a.Validate()
		if len(errs) == 0 {
			fmt.Fprintf(w, "ok   %s\n", e.Name())
			continue
		}
		problems += len(errs)
		for _, ve := range errs {
			fmt.Fprintf(w, "FAIL %s: %v\n", e.Name(), ve)
		}
	}
	fmt.Fprintf(w, "%d files checked, %d problems\n", checked, problems)
	if problems > 0 {
		return fmt.Errorf("%d validation problems", problems)
	}
	return nil
}

func cmdExport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	out := fs.String("out", "content/activities", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := pdcunplugged.CorpusFiles()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	slugs := make([]string, 0, len(files))
	for slug := range files {
		slugs = append(slugs, slug)
	}
	sort.Strings(slugs)
	for _, slug := range slugs {
		if err := os.WriteFile(filepath.Join(*out, slug+".md"), []byte(files[slug]), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "wrote %d activities to %s\n", len(files), *out)
	return nil
}
