// Command pdcu is the PDCunplugged toolbox: browse the curated corpus,
// regenerate the paper's coverage tables, find curriculum gaps, scaffold
// and validate new activities, build or serve the static site, and run the
// goroutine dramatizations.
//
// Usage:
//
//	pdcu list [-course CS1] [-sense touch] [-medium cards] [-ku TERM] [-area TERM]
//	pdcu show <slug>
//	pdcu search [-json] [-limit N] <query>
//	pdcu coverage
//	pdcu stats
//	pdcu gaps
//	pdcu impact [-cs2013details PD_6,...] [-tcppdetails A_Broadcast,...]
//	pdcu new <title>
//	pdcu validate <dir>
//	pdcu export -out DIR
//	pdcu build -out DIR [-j N] [-verbose]
//	pdcu serve -addr :8080 [-src DIR -watch [-poll D]] [-rate R -burst B] [-pprof] [-verbose]
//	pdcu sim list
//	pdcu sim run <name> [-n N] [-workers W] [-seed S] [-trace] [-param k=v ...]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pdcunplugged"
	"pdcunplugged/internal/activity"
	"pdcunplugged/internal/coverage"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/dash"
	"pdcunplugged/internal/obs/trace"
	"pdcunplugged/internal/query"
	"pdcunplugged/internal/report"
	"pdcunplugged/internal/sim"
	"pdcunplugged/internal/watch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdcu:", err)
		os.Exit(1)
	}
}

// run dispatches a subcommand; all output goes to w so tests can capture it.
func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return cmdList(rest, w)
	case "show":
		return cmdShow(rest, w)
	case "search":
		return cmdSearch(rest, w)
	case "coverage":
		return cmdCoverage(rest, w)
	case "stats":
		return cmdStats(rest, w)
	case "gaps":
		return cmdGaps(rest, w)
	case "impact":
		return cmdImpact(rest, w)
	case "new":
		return cmdNew(rest, w)
	case "validate":
		return cmdValidate(rest, w)
	case "export":
		return cmdExport(rest, w)
	case "build":
		return cmdBuild(rest, w)
	case "serve":
		return cmdServe(rest, w)
	case "sim":
		return cmdSim(rest, w)
	case "bib":
		return cmdBib(rest, w)
	case "review":
		return cmdReview(rest, w)
	case "timeline":
		return cmdTimeline(rest, w)
	case "assess":
		return cmdAssess(rest, w)
	case "matrix":
		return cmdMatrix(rest, w)
	case "plan":
		return cmdPlan(rest, w)
	case "help", "-h", "--help":
		fmt.Fprint(w, usage)
		return nil
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

const usage = `pdcu <command> [flags]

Commands:
  list      list activities, filterable by taxonomy terms
  show      print one activity's Markdown
  search    full-text search over titles, authors and details
  coverage  regenerate Tables I and II plus sub-category coverage
  stats     course, medium, sense and resource statistics
  gaps      list uncovered learning outcomes and topics
  impact    score a proposed activity's coverage impact
  new       print a fresh activity template (Fig. 1)
  validate  load and validate a directory of activity .md files
  export    write the curated corpus as Markdown files
  build     render the static site to a directory
  serve     serve the static site for local preview
  sim       list or run activity dramatizations
  bib       list the citation database, export BibTeX, or show shared sources
  review    curator-review a contributed activity .md file
  timeline  activities per source decade (thirty years of literature)
  assess    generate a pre/post assessment sheet for an activity
  plan      build a maximum-coverage workshop plan under constraints
  matrix    course x knowledge-unit and course x topic-area activity matrices
`

func usageError() error { return fmt.Errorf("missing command\n%s", usage) }

func openRepo() (*pdcunplugged.Repository, error) {
	return pdcunplugged.Open()
}

func cmdList(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	course := fs.String("course", "", "filter by course term (e.g. CS1)")
	sense := fs.String("sense", "", "filter by sense term (e.g. touch)")
	medium := fs.String("medium", "", "filter by medium term (e.g. cards)")
	ku := fs.String("ku", "", "filter by cs2013 term")
	area := fs.String("area", "", "filter by tcpp term")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	acts := repo.All()
	filter := func(keep func(a *pdcunplugged.Activity) bool) {
		var out []*pdcunplugged.Activity
		for _, a := range acts {
			if keep(a) {
				out = append(out, a)
			}
		}
		acts = out
	}
	if *course != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.Courses, *course) })
	}
	if *sense != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.Senses, *sense) })
	}
	if *medium != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.Medium, *medium) })
	}
	if *ku != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.CS2013, *ku) })
	}
	if *area != "" {
		filter(func(a *pdcunplugged.Activity) bool { return contains(a.TCPP, *area) })
	}
	tb := report.New(fmt.Sprintf("%d activities", len(acts)), "Slug", "Title", "Courses", "Materials")
	for _, a := range acts {
		mat := ""
		if a.HasExternalResources() {
			mat = "yes"
		}
		tb.AddRow(a.Slug, a.Title, strings.Join(a.Courses, ","), mat)
	}
	fmt.Fprint(w, tb.String())
	return nil
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func cmdShow(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pdcu show <slug>")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	a, ok := repo.Get(args[0])
	if !ok {
		return fmt.Errorf("no activity %q; try 'pdcu list'", args[0])
	}
	fmt.Fprint(w, a.Render())
	return nil
}

func cmdSearch(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit results as JSON (the /api/v1/search response shape)")
	limit := fs.Int("limit", 10, "maximum results (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: pdcu search [-json] [-limit N] <query>")
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	snap := query.NewSnapshot(repo)
	resp := query.Search(snap, strings.Join(fs.Args(), " "), *limit)
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(resp)
	}
	for _, h := range resp.Results {
		fmt.Fprintf(w, "%6.3f  %-32s %s\n", h.Score, h.Slug, h.Title)
	}
	if len(resp.Results) == 0 {
		fmt.Fprintln(w, "no matches")
		if sugg := snap.Index.Suggest(fs.Arg(0), 5); len(sugg) > 0 {
			fmt.Fprintf(w, "did you mean: %s\n", strings.Join(sugg, ", "))
		}
	}
	return nil
}

func cmdBib(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bib", flag.ContinueOnError)
	export := fs.Bool("export", false, "emit BibTeX instead of a listing")
	shared := fs.Bool("shared", false, "show sources cited by multiple activities (variation clusters)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *export {
		fmt.Fprint(w, pdcunplugged.ExportBibTeX(nil))
		return nil
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	if *shared {
		g := pdcunplugged.BuildCitationGraph(repo)
		cur := ""
		for _, link := range g.SharedSources() {
			if link.Ref.Key != cur {
				cur = link.Ref.Key
				fmt.Fprintf(w, "%s (%d): %s\n", link.Ref.Key, link.Ref.Year, link.Ref.Title)
			}
			fmt.Fprintf(w, "  - %s\n", link.Slug)
		}
		return nil
	}
	g := pdcunplugged.BuildCitationGraph(repo)
	tb := report.New("CITATION DATABASE", "Key", "Year", "Cited by", "Title")
	for _, ref := range pdcunplugged.Bibliography() {
		tb.AddRow(ref.Key, ref.Year, len(g.ByRef[ref.Key]), ref.Title)
	}
	fmt.Fprint(w, tb.String())
	if len(g.Unresolved) > 0 {
		fmt.Fprintf(w, "unresolved citations: %d\n", len(g.Unresolved))
	}
	return nil
}

func cmdReview(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pdcu review <file.md>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	slug := strings.TrimSuffix(filepath.Base(args[0]), ".md")
	repo, err := openRepo()
	if err != nil {
		return err
	}
	if _, exists := repo.Get(slug); exists {
		// Augmentation path: reviewing an edit to an existing activity.
		rev := pdcunplugged.ReviewUpdate(repo, slug, string(data))
		fmt.Fprint(w, rev.Summary())
		if !rev.Accepted() {
			return fmt.Errorf("update needs work (%d errors)", len(rev.Errors))
		}
		_, delta, err := pdcunplugged.ApplyUpdate(repo, rev.Activity)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "update preview: %s\n", delta)
		return nil
	}
	rev := pdcunplugged.ReviewSubmission(repo, slug, string(data))
	fmt.Fprint(w, rev.Summary())
	if !rev.Accepted() {
		return fmt.Errorf("submission needs work (%d errors)", len(rev.Errors))
	}
	merged, delta, err := pdcunplugged.MergeActivity(repo, rev.Activity)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "merge preview: %s (repository would hold %d activities)\n", delta, merged.Len())
	return nil
}

func cmdAssess(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("assess", flag.ContinueOnError)
	simulate := fs.Int("simulate", 0, "also run an item analysis over a synthetic class of this size")
	seed := fs.Int64("seed", 1, "seed for the synthetic class")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu assess <slug> [-simulate N]")
	}
	slug := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	a, ok := repo.Get(slug)
	if !ok {
		return fmt.Errorf("no activity %q", slug)
	}
	sheet, err := pdcunplugged.GenerateAssessment(a)
	if err != nil {
		return err
	}
	fmt.Fprint(w, sheet.Markdown())
	if *simulate > 0 {
		responses := pdcunplugged.SimulatedResponses(len(sheet.Items), *simulate, 0.6, *seed)
		analysis, err := pdcunplugged.AnalyzeAssessment(len(sheet.Items), responses)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Item analysis (synthetic class of %d)\n\n%s", *simulate, analysis.Summary())
	}
	return nil
}

func cmdPlan(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	course := fs.String("course", "", "restrict to a course term (e.g. CS1)")
	senses := fs.String("senses", "", "comma-separated senses to engage (at least one)")
	avoid := fs.String("avoid", "", "comma-separated mediums to avoid")
	materials := fs.Bool("materials", false, "require external materials")
	slots := fs.Int("slots", 4, "number of activities")
	handout := fs.Bool("handout", false, "emit a Markdown instructor handout instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	p, err := pdcunplugged.BuildPlan(repo, pdcunplugged.PlanConstraints{
		Course:           *course,
		EngageSenses:     splitCSV(*senses),
		AvoidMediums:     splitCSV(*avoid),
		RequireMaterials: *materials,
		Slots:            *slots,
	})
	if err != nil {
		return err
	}
	if *handout {
		fmt.Fprint(w, p.Markdown(repo))
		return nil
	}
	fmt.Fprint(w, p.Summary())
	fmt.Fprintf(w, "reaches %.0f%% of the curation's covered terms\n", 100*p.CoverageRatio(repo))
	return nil
}

func cmdMatrix(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	kuOrder := []string{"PF", "PD", "PCC", "PAAP", "PA", "PP", "DS", "CC", "FMS"}
	headers := append([]string{"Course"}, kuOrder...)
	headers = append(headers, "Total")
	tb := report.New("ACTIVITIES PER COURSE x KNOWLEDGE UNIT", headers...)
	for _, row := range coverage.CourseUnitMatrix(repo) {
		cells := []interface{}{row.Course}
		for _, ku := range kuOrder {
			cells = append(cells, row.PerUnit[ku])
		}
		cells = append(cells, row.Total)
		tb.AddRow(cells...)
	}
	fmt.Fprint(w, tb.String())
	areaOrder := []string{"Architecture", "Programming", "Algorithms", "Crosscutting and Advanced Topics"}
	tb2 := report.New("ACTIVITIES PER COURSE x TCPP AREA", "Course", "Arch", "Prog", "Alg", "Cross", "Total")
	for _, row := range coverage.CourseAreaMatrix(repo) {
		cells := []interface{}{row.Course}
		for _, area := range areaOrder {
			cells = append(cells, row.PerArea[area])
		}
		cells = append(cells, row.Total)
		tb2.AddRow(cells...)
	}
	fmt.Fprint(w, tb2.String())
	return nil
}

func cmdTimeline(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	tb := report.New("ACTIVITIES PER SOURCE DECADE", "Decade", "Activities")
	for _, row := range pdcunplugged.Timeline(repo) {
		tb.AddRow(fmt.Sprintf("%ds", row.Decade), row.Activities)
	}
	fmt.Fprint(w, tb.String())
	tbb := report.New("TCPP COVERAGE BY BLOOM LEVEL", "Level", "Topics", "Covered", "Percent")
	for _, row := range pdcunplugged.BloomStats(repo) {
		tbb.AddRow(row.Level.String(), row.Topics, row.Covered, row.PercentCoverage())
	}
	fmt.Fprint(w, tbb.String())
	return nil
}

func cmdCoverage(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	t1 := report.New("TABLE I: CS2013 COVERAGE", "Knowledge Unit", "Num LOs", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableI(repo) {
		name := r.Unit.Name
		if r.Unit.Elective {
			name += " (E)"
		}
		t1.AddRow(name, r.NumOutcomes, r.CoveredOutcomes, r.PercentCoverage(), r.TotalActivities)
	}
	t2 := report.New("TABLE II: TCPP COVERAGE", "Topic Area", "Num Topics", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableII(repo) {
		t2.AddRow(r.Area.Name, r.NumTopics, r.CoveredTopics, r.PercentCoverage(), r.TotalActivities)
	}
	t3 := report.New("SUB-CATEGORY COVERAGE (Section III-C)", "Area", "Sub-category", "Topics", "Covered", "Percent")
	for _, r := range pdcunplugged.Subcategories(repo) {
		t3.AddRow(r.Area, r.Subcategory, r.NumTopics, r.CoveredTopics, r.PercentCoverage())
	}
	fmt.Fprintf(w, "%s\n%s\n%s", t1, t2, t3)
	return nil
}

func cmdStats(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	tb := report.New("ACTIVITIES PER COURSE", "Course", "Activities")
	for _, c := range pdcunplugged.CourseCounts(repo) {
		tb.AddRow(c.Term, c.Count)
	}
	tm := report.New("ACTIVITIES PER MEDIUM", "Medium", "Activities")
	for _, c := range pdcunplugged.MediumCounts(repo) {
		tm.AddRow(c.Term, c.Count)
	}
	ts := report.New("SENSES ENGAGED", "Sense", "Activities", "Percent")
	for _, s := range pdcunplugged.SenseStats(repo) {
		ts.AddRow(s.Sense, s.Count, s.Percent)
	}
	ct := coverage.MediumSenseCrossTab(repo)
	headers := append([]string{"Medium"}, ct.Senses...)
	tx := report.New("MEDIUM x SENSE", headers...)
	for _, m := range ct.Mediums {
		cells := []interface{}{m}
		for _, s := range ct.Senses {
			cells = append(cells, ct.Cell(m, s))
		}
		tx.AddRow(cells...)
	}
	res := coverage.Resources(repo)
	assessed, total := coverage.AssessmentStats(repo)
	fmt.Fprintf(w, "%s\n%s\n%s\n%s\n", tb, tm, ts, tx)
	fmt.Fprintf(w, "External resources: %d/%d activities (%.1f%%)\n", res.WithResources, res.Total, res.Percent())
	fmt.Fprintf(w, "Assessed: %d/%d activities\n", assessed, total)
	return nil
}

func cmdGaps(_ []string, w io.Writer) error {
	repo, err := openRepo()
	if err != nil {
		return err
	}
	g := pdcunplugged.FindGaps(repo)
	fmt.Fprintf(w, "Uncovered CS2013 learning outcomes (%d):\n", len(g.Outcomes))
	for _, og := range g.Outcomes {
		fmt.Fprintf(w, "  %-8s [%s] %s\n", og.Term, og.Unit.Name, og.Outcome.Text)
	}
	fmt.Fprintf(w, "Uncovered TCPP core topics (%d):\n", len(g.Topics))
	for _, tg := range g.Topics {
		fmt.Fprintf(w, "  %-28s [%s / %s] %s\n", tg.Term, tg.Area.Name, tg.Topic.Subcategory, tg.Topic.Name)
	}
	return nil
}

func cmdImpact(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("impact", flag.ContinueOnError)
	csd := fs.String("cs2013details", "", "comma-separated outcome terms the proposed activity covers")
	tcd := fs.String("tcppdetails", "", "comma-separated topic terms the proposed activity covers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	repo, err := openRepo()
	if err != nil {
		return err
	}
	score, novel, err := pdcunplugged.Impact(repo, splitCSV(*csd), splitCSV(*tcd))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "impact score: %d (novel terms: %s)\n", score, strings.Join(novel, ", "))
	return nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func cmdNew(args []string, w io.Writer) error {
	title := "example"
	if len(args) > 0 {
		title = strings.Join(args, " ")
	}
	fmt.Fprint(w, pdcunplugged.ActivityTemplate(title))
	return nil
}

func cmdValidate(args []string, w io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: pdcu validate <dir>")
	}
	dir := args[0]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	problems := 0
	checked := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".md") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		slug := strings.TrimSuffix(e.Name(), ".md")
		checked++
		a, err := activity.Parse(slug, string(data))
		if err != nil {
			problems++
			fmt.Fprintf(w, "FAIL %s: %v\n", e.Name(), err)
			continue
		}
		errs := a.Validate()
		if len(errs) == 0 {
			fmt.Fprintf(w, "ok   %s\n", e.Name())
			continue
		}
		problems += len(errs)
		for _, ve := range errs {
			fmt.Fprintf(w, "FAIL %s: %v\n", e.Name(), ve)
		}
	}
	fmt.Fprintf(w, "%d files checked, %d problems\n", checked, problems)
	if problems > 0 {
		return fmt.Errorf("%d validation problems", problems)
	}
	return nil
}

func cmdExport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	out := fs.String("out", "content/activities", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := pdcunplugged.CorpusFiles()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	slugs := make([]string, 0, len(files))
	for slug := range files {
		slugs = append(slugs, slug)
	}
	sort.Strings(slugs)
	for _, slug := range slugs {
		if err := os.WriteFile(filepath.Join(*out, slug+".md"), []byte(files[slug]), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "wrote %d activities to %s\n", len(files), *out)
	return nil
}

func cmdBuild(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	out := fs.String("out", "public", "output directory")
	src := fs.String("src", "", "optional directory of activity .md files (defaults to the embedded corpus)")
	jobs := fs.Int("j", 0, "render workers (0 = one per CPU)")
	verbose := fs.Bool("verbose", false, "print per-phase span timings and debug logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verbose {
		obs.SetLevel(slog.LevelDebug)
	}
	repo, err := repoFrom(*src)
	if err != nil {
		return err
	}
	b := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{Workers: *jobs})
	s, err := b.Build(repo)
	if err != nil {
		return err
	}
	if err := s.WriteTo(*out); err != nil {
		return err
	}
	st := b.LastStats()
	fmt.Fprintf(w, "built %d pages from %d activities into %s (%d jobs, %d workers)\n",
		s.Len(), repo.Len(), *out, st.Jobs, st.Workers)
	if *verbose {
		printPhaseTimings(w)
	}
	return nil
}

// printPhaseTimings renders the span histogram collected during this
// process as the `build -verbose` phase breakdown.
func printPhaseTimings(w io.Writer) {
	timings := obs.PhaseTimings()
	if len(timings) == 0 {
		return
	}
	tb := report.New("PHASE TIMINGS", "Phase", "Calls", "Total", "Mean")
	for _, pt := range timings {
		tb.AddRow(pt.Phase, pt.Count,
			pt.Total.Round(time.Microsecond).String(),
			pt.Mean().Round(time.Microsecond).String())
	}
	fmt.Fprint(w, tb.String())
}

func repoFrom(src string) (*pdcunplugged.Repository, error) {
	if src == "" {
		return openRepo()
	}
	return pdcunplugged.LoadFS(os.DirFS(src), ".")
}

// liveSite bundles the currently-served site with the repository it was
// built from. `serve -watch` publishes a whole new liveSite through an
// atomic pointer on every successful rebuild, so in-flight requests keep
// a consistent view and the swap needs no locking.
type liveSite struct {
	site    *pdcunplugged.Site
	repo    *pdcunplugged.Repository
	handler http.Handler
}

func newLiveSite(s *pdcunplugged.Site, repo *pdcunplugged.Repository) *liveSite {
	return &liveSite{site: s, repo: repo, handler: s.Handler()}
}

// serveState bundles everything the serve handler tree dispatches
// through: the live-site pointer, the query service, the tracer and
// rolling time-series aggregator behind /debug/obs, and the
// health/readiness state.
type serveState struct {
	cur    *atomic.Pointer[liveSite]
	qsvc   *query.Service
	tracer *trace.Tracer
	rollup *obs.Rollup
	health *healthState
}

func newServeState(cur *atomic.Pointer[liveSite], qsvc *query.Service, tracer *trace.Tracer) *serveState {
	return &serveState{
		cur:    cur,
		qsvc:   qsvc,
		tracer: tracer,
		health: &healthState{start: time.Now()},
	}
}

// healthState separates liveness (the process responds) from readiness
// (a site has been built and published). It also remembers the most
// recent -watch rebuild outcome, so /readyz tells an operator whether
// the corpus they just edited actually went live.
type healthState struct {
	start   time.Time
	ready   atomic.Bool
	rebuild atomic.Pointer[rebuildOutcome]
}

// rebuildOutcome records one reloadSite attempt for /readyz.
type rebuildOutcome struct {
	Time     time.Time `json:"time"`
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Duration string    `json:"duration"`
	TraceID  string    `json:"trace_id,omitempty"`
}

// buildInfo is the binary provenance block of /readyz, read from the
// module metadata the Go linker embeds.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

func readBuildInfo() buildInfo {
	out := buildInfo{}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	out.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// reloadSite reloads the corpus from src, rebuilds through b (so
// unchanged pages come from the builder's cache), and publishes the
// result to both the static site pointer and the query service (whose
// result cache is invalidated wholesale by the swap). On any error the
// previously-published site stays live. The whole reload runs as one
// root trace — load, per-job renders, and the index build appear as
// child spans at /debug/obs/traces — and its outcome is published to
// /readyz.
func reloadSite(st *serveState, b *pdcunplugged.SiteBuilder, src string) (err error) {
	// Forced: rebuilds are rare and operator-triggered, so their
	// waterfall is always recorded regardless of the sample rate.
	ctx, root := st.tracer.StartForced(context.Background(), "serve.rebuild")
	start := time.Now()
	defer func() {
		outcome := &rebuildOutcome{
			Time:     start,
			OK:       err == nil,
			Duration: time.Since(start).Round(time.Millisecond).String(),
		}
		if err != nil {
			outcome.Error = err.Error()
			root.FailErr(err)
		}
		if root != nil {
			outcome.TraceID = root.TraceID().String()
		}
		root.End()
		st.health.rebuild.Store(outcome)
	}()

	root.SetAttr("src", src)
	_, loadSpan := trace.StartSpan(ctx, "serve.load_corpus")
	repo, err := pdcunplugged.LoadFS(os.DirFS(src), ".")
	if err != nil {
		loadSpan.FailErr(err)
		loadSpan.End()
		return err
	}
	loadSpan.End()
	s, err := b.BuildContext(ctx, repo)
	if err != nil {
		return err
	}
	st.cur.Store(newLiveSite(s, repo))
	snap := query.NewSnapshotContext(ctx, repo)
	st.qsvc.Swap(snap)
	root.SetAttr("generation", snap.Generation)
	return nil
}

func cmdServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	src := fs.String("src", "", "optional directory of activity .md files")
	watchSrc := fs.Bool("watch", false, "poll -src for changes and rebuild incrementally (requires -src)")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval for -watch")
	withPprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	verbose := fs.Bool("verbose", false, "debug logging (shorthand for -log-level debug)")
	logLevel := fs.String("log-level", "info", "log threshold: debug, info, warn, or error")
	rate := fs.Float64("rate", 100, "query API admission rate in requests/second (0 disables)")
	burst := fs.Int("burst", 0, "query API token-bucket burst (0 = 2x rate)")
	sample := fs.Float64("trace-sample", 0.1, "probability of retaining an ordinary trace (error/slow/traceparent traces are always kept)")
	slow := fs.Duration("trace-slow", 250*time.Millisecond, "pin any trace at least this long")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *verbose {
		lvl = slog.LevelDebug
	}
	obs.SetLevel(lvl)
	if *watchSrc && *src == "" {
		return fmt.Errorf("serve: -watch requires -src (the embedded corpus cannot change)")
	}
	if *sample < 0 || *sample > 1 {
		return fmt.Errorf("serve: -trace-sample must be in [0,1], got %v", *sample)
	}

	tracer := trace.New(trace.Options{SampleRate: *sample, SlowThreshold: *slow})
	trace.SetDefault(tracer)
	rollup := obs.NewRollup(obs.Default(), 5*time.Second, 120)
	rollup.AddHook(obs.NewRuntimeCollector(obs.Default()).Collect)

	repo, err := repoFrom(*src)
	if err != nil {
		return err
	}
	builder := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{})
	s, err := builder.Build(repo)
	if err != nil {
		return err
	}
	cur := &atomic.Pointer[liveSite]{}
	cur.Store(newLiveSite(s, repo))
	qsvc := query.New(query.NewSnapshot(repo), query.Options{
		RateLimit: *rate,
		Burst:     *burst,
	})

	st := newServeState(cur, qsvc, tracer)
	st.rollup = rollup
	st.health.ready.Store(true) // first build is published

	log := obs.Logger()
	mux := serveMux(st, *withPprof)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go rollup.Run(ctx)

	if *watchSrc {
		go func() {
			err := watch.Watch(ctx, *src, *poll, func() {
				if err := reloadSite(st, builder, *src); err != nil {
					log.Warn("rebuild failed; keeping previous site", "err", err)
					return
				}
				bs := builder.LastStats()
				attrs := []any{
					"pages", cur.Load().site.Len(),
					"jobs", bs.Jobs, "cache_hits", bs.CacheHits,
					"cache_misses", bs.CacheMisses,
					"duration", bs.Duration.Round(time.Millisecond).String(),
				}
				if o := st.health.rebuild.Load(); o != nil && o.TraceID != "" {
					attrs = append(attrs, "trace_id", o.TraceID)
				}
				log.Info("site rebuilt", attrs...)
			})
			if err != nil && ctx.Err() == nil {
				log.Warn("watcher stopped", "err", err)
			}
		}()
	}

	fmt.Fprintf(w, "serving %d pages on %s (query API: /api/v1/, metrics: /metrics, health: /healthz /readyz, dashboard: /debug/obs", s.Len(), *addr)
	if *withPprof {
		fmt.Fprint(w, ", pprof: /debug/pprof/")
	}
	if *watchSrc {
		fmt.Fprintf(w, ", watching %s every %s", *src, *poll)
	}
	fmt.Fprintln(w, ")")
	log.Info("server starting", "addr", *addr, "pages", s.Len(),
		"pprof", *withPprof, "watch", *watchSrc)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Info("shutdown signal received, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("graceful shutdown incomplete, forcing close", "err", err)
		srv.Close()
		return err
	}
	log.Info("server stopped cleanly")
	fmt.Fprintln(w, "server stopped")
	return nil
}

// serveMux assembles the serve handler tree: the instrumented site at /,
// the live query API under /api/v1/, plus the operational endpoints
// (/metrics, /healthz, /readyz, /debug/obs, and optionally
// /debug/pprof/) outside the request-metrics middleware so scrapes and
// dashboard refreshes do not count as site traffic. The site, query,
// and health endpoints dispatch through atomic pointers on every
// request, so a `-watch` rebuild takes effect without touching the mux.
func serveMux(st *serveState, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mw := obs.NewHTTPMetrics(obs.Default()).WithTracer(st.tracer)
	mux.Handle("/metrics", obs.Default().Handler())
	// Liveness: the process is up and serving its mux. Deliberately
	// constant-cost — orchestrators hammer this.
	mux.HandleFunc("/healthz", func(hw http.ResponseWriter, r *http.Request) {
		hw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(hw, `{"status":"ok","uptime_seconds":%.0f}`+"\n",
			time.Since(st.health.start).Seconds())
	})
	// Readiness: 503 until the first site build has been published, then
	// corpus generation, uptime, last rebuild outcome, and build info.
	mux.HandleFunc("/readyz", func(hw http.ResponseWriter, r *http.Request) {
		hw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(hw)
		enc.SetIndent("", "  ")
		if !st.health.ready.Load() {
			hw.WriteHeader(http.StatusServiceUnavailable)
			enc.Encode(map[string]any{
				"status": "starting",
				"reason": "first site build in flight",
			})
			return
		}
		ls := st.cur.Load()
		enc.Encode(map[string]any{
			"status":         "ready",
			"generation":     st.qsvc.Snapshot().Generation,
			"pages":          ls.site.Len(),
			"activities":     ls.repo.Len(),
			"uptime_seconds": time.Since(st.health.start).Seconds(),
			"last_rebuild":   st.health.rebuild.Load(),
			"build":          readBuildInfo(),
		})
	})
	mux.Handle("/api/v1/", mw.Wrap(st.qsvc.Handler()))
	dashHandler := dash.Handler(dash.Config{
		Registry: obs.Default(),
		Rollup:   st.rollup,
		Tracer:   st.tracer,
	})
	mux.Handle("/debug/obs", dashHandler)
	mux.Handle("/debug/obs/", dashHandler)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", mw.Wrap(http.HandlerFunc(func(hw http.ResponseWriter, r *http.Request) {
		st.cur.Load().handler.ServeHTTP(hw, r)
	})))
	return mux
}

func cmdSim(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pdcu sim <list|run> ...")
	}
	switch args[0] {
	case "list":
		tb := report.New("ACTIVITY DRAMATIZATIONS", "Name", "Shows")
		for _, name := range pdcunplugged.Simulations() {
			a, _ := sim.Get(name)
			tb.AddRow(name, a.Summary())
		}
		fmt.Fprint(w, tb.String())
		return nil
	case "run":
		return cmdSimRun(args[1:], w)
	case "sweep":
		return cmdSimSweep(args[1:], w)
	case "measure":
		return cmdSimMeasure(args[1:], w)
	default:
		return fmt.Errorf("unknown sim subcommand %q", args[0])
	}
}

func cmdSimMeasure(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sim measure", flag.ContinueOnError)
	metric := fs.String("metric", "", "counter or gauge to summarize (required)")
	runs := fs.Int("runs", 30, "number of seeded runs")
	n := fs.Int("n", 0, "participants (0 = activity default)")
	workers := fs.Int("workers", 0, "workers (0 = activity default)")
	seed := fs.Int64("seed", 1, "base seed")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu sim measure <name> -metric M [-runs N]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	d, err := sim.Measure(name, *metric, sim.Config{
		Participants: *n, Workers: *workers, Seed: *seed,
	}, *runs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, d)
	if d.Violations > 0 {
		return fmt.Errorf("%d runs violated the invariant", d.Violations)
	}
	return nil
}

func cmdSimSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sim sweep", flag.ContinueOnError)
	vary := fs.String("vary", "participants", "dimension to vary: participants, workers, seed, or a param name")
	values := fs.String("values", "", "comma-separated grid values (required)")
	metric := fs.String("metric", "", "counter or gauge to collect (required)")
	repeats := fs.Int("repeats", 1, "average each point over this many seeds")
	seed := fs.Int64("seed", 1, "base seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an ASCII plot")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu sim sweep <name> -values 8,16,32 -metric rounds [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var grid []float64
	for _, v := range splitCSV(*values) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad grid value %q: %w", v, err)
		}
		grid = append(grid, f)
	}
	series, err := sim.Sweep{
		Activity: name,
		Vary:     *vary,
		Values:   grid,
		Metric:   *metric,
		Base:     sim.Config{Seed: *seed},
		Repeats:  *repeats,
	}.Run()
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprint(w, series.CSV())
	} else {
		fmt.Fprint(w, series.AsciiPlot(40))
	}
	if !series.AllOK() {
		return fmt.Errorf("invariant violated at one or more grid points")
	}
	return nil
}

type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]float64(p)) }

func (p paramFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("param must be key=value, got %q", v)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("param %s: %w", k, err)
	}
	p[k] = f
	return nil
}

func cmdSimRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sim run", flag.ContinueOnError)
	n := fs.Int("n", 0, "participants (0 = activity default)")
	workers := fs.Int("workers", 0, "workers (0 = activity default)")
	seed := fs.Int64("seed", 1, "random seed")
	trace := fs.Bool("trace", false, "print the narration transcript")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	params := paramFlags{}
	fs.Var(params, "param", "activity-specific knob key=value (repeatable)")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu sim run <name> [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	rep, err := pdcunplugged.Simulate(name, pdcunplugged.SimConfig{
		Participants: *n,
		Workers:      *workers,
		Seed:         *seed,
		Trace:        *trace,
		Params:       params,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := rep.WriteJSON()
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
	} else {
		fmt.Fprintln(w, rep.Summary())
		if *trace {
			fmt.Fprint(w, rep.Tracer.Transcript())
		}
	}
	if !rep.OK {
		return fmt.Errorf("invariant violated")
	}
	return nil
}
