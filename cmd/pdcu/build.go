package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/report"
)

// cmdBuild runs the engine pipeline once and writes the generation's
// site to disk. Build and serve share the same load→build→index path,
// so the generation tag printed here matches what serve would publish
// for the same corpus.
func cmdBuild(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	cfg, err := engine.FromEnv()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	cfg.BindBuildFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	obs.SetLevel(cfg.SlogLevel())
	gen, err := eng.Rebuild(context.Background())
	if err != nil {
		return err
	}
	if err := gen.Site.WriteTo(cfg.Out); err != nil {
		return err
	}
	st := gen.Stats
	fmt.Fprintf(w, "built %d pages from %d activities into %s (%d jobs, %d workers, generation %s)\n",
		gen.Site.Len(), gen.Repo.Len(), cfg.Out, st.Jobs, st.Workers, gen.ID)
	if cfg.Verbose {
		printPhaseTimings(w)
	}
	return nil
}

// printPhaseTimings renders the span histogram collected during this
// process as the `build -verbose` phase breakdown.
func printPhaseTimings(w io.Writer) {
	timings := obs.PhaseTimings()
	if len(timings) == 0 {
		return
	}
	tb := report.New("PHASE TIMINGS", "Phase", "Calls", "Total", "Mean")
	for _, pt := range timings {
		tb.AddRow(pt.Phase, pt.Count,
			pt.Total.Round(time.Microsecond).String(),
			pt.Mean().Round(time.Microsecond).String())
	}
	fmt.Fprint(w, tb.String())
}
