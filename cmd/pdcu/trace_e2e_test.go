package main

// End-to-end acceptance for request-scoped tracing through the real
// engine mux: a W3C traceparent request must yield a retrievable
// waterfall covering the whole query pipeline, and an engine rebuild
// must appear as a trace with per-job child spans. Both run with
// sampling OFF so retention is earned (traceparent / StartForced), not
// won by a sample draw.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/obs/trace"
)

func TestServeTraceparentEndToEnd(t *testing.T) {
	eng := builtEngine(t, func(c *engine.Config) { c.TraceSample = 0 })
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	const remote = "11112222333344445555666677778888"
	req, err := http.NewRequest("GET", srv.URL+"/api/v1/search?q=sorting+cards&limit=5", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+remote+"-aaaabbbbccccdddd-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search = %d, want 200", resp.StatusCode)
	}
	if echo := resp.Header.Get("traceparent"); !strings.Contains(echo, remote) {
		t.Errorf("response traceparent %q does not continue trace %s", echo, remote)
	}

	tid, err := trace.ParseTraceID(remote)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := eng.Tracer().Store().Get(tid)
	if !ok {
		t.Fatal("traceparent request left no retrievable trace with sampling off")
	}
	// A cold-cache search walks the whole pipeline; every stage must
	// appear as a child span of the request root.
	got := map[string]bool{}
	for _, sp := range d.Spans {
		got[sp.Name] = true
	}
	for _, want := range []string{"query.ratelimit", "query.cache", "query.coalesce", "query.search"} {
		if !got[want] {
			t.Errorf("trace missing child span %q (have %v)", want, d.Spans)
		}
	}

	// And the operator-facing route serves the same waterfall.
	for _, path := range []string{
		"/debug/obs/traces/" + tid.String(),
		"/debug/obs/traces/" + tid.String() + "?format=json",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "query.coalesce") {
			t.Errorf("%s does not show the query.coalesce span", path)
		}
	}
}

func TestRebuildTraceWaterfall(t *testing.T) {
	dir := writeCorpus(t)
	eng := testEngine(t, func(c *engine.Config) {
		c.Srcs = engine.DirSources(dir)
		c.TraceSample = 0
	})

	if _, err := eng.Rebuild(context.Background()); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	out := eng.LastOutcome()
	if out == nil || !out.OK || out.TraceID == "" {
		t.Fatalf("rebuild outcome = %+v, want success with a trace id", out)
	}
	tid, err := trace.ParseTraceID(out.TraceID)
	if err != nil {
		t.Fatalf("rebuild trace id %q: %v", out.TraceID, err)
	}
	d, ok := eng.Tracer().Store().Get(tid)
	if !ok {
		t.Fatal("rebuild trace not retained with sampling off")
	}
	if d.Root != "engine.rebuild" {
		t.Errorf("rebuild trace root = %q, want engine.rebuild", d.Root)
	}
	var load, build bool
	var jobs int
	for _, sp := range d.Spans {
		if sp.Name == "engine.load" {
			load = true
		}
		if sp.Name == "site.build" {
			build = true
		}
		if strings.HasPrefix(sp.Name, "site.job.") {
			jobs++
		}
	}
	if !load || !build || jobs == 0 {
		t.Errorf("rebuild trace has load=%v build=%v jobs=%d, want engine.load and site.build spans with per-job children", load, build, jobs)
	}

	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/obs/traces/" + tid.String())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "site.job.") {
		t.Errorf("waterfall for rebuild trace = %d, missing site.job spans", resp.StatusCode)
	}
}
