package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/loadgen"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/slo"
)

// cmdLoadtest drives the built-in load generator. Two modes:
//
//   - Self-serve (default): build the engine in-process, serve it on a
//     loopback port, and load-test that — one command measures the whole
//     stack with no setup, and the report carries the server's SLO
//     verdicts because the objectives are evaluated in the same process.
//   - Remote (-target URL): replay the mix against an already-running
//     server. Latency/error/shed stats work the same; SLO verdicts and
//     generation churn need the self-serve mode.
//
// -baseline FILE persists the report as the committed benchmark
// artifact; -gate FILE re-runs the mix and fails (nonzero exit) when the
// fresh run regresses past the noise-tolerant thresholds in
// internal/loadgen. `make slo-smoke` wires the gate into CI.
func cmdLoadtest(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	cfg, err := engine.FromEnv()
	if err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	// Loadtest defaults differ from serve on purpose: admission control
	// off (a smoke run should not shed its own traffic) and warn-level
	// logging (per-request access logs would drown the report; the
	// numbers ARE the output).
	cfg.Rate = 0
	cfg.ContribRate = 0
	cfg.LogLevel = "warn"

	target := fs.String("target", "", "load already-running server(s): one base URL, or a comma-separated fleet to round-robin across (default: self-serve in-process)")
	mixStr := fs.String("mix", loadgen.DefaultMix().String(), "weighted traffic mix, kind=weight pairs (kinds: search, typo, activities, facets, site, contrib)")
	qps := fs.Float64("qps", 200, "open-loop arrival rate in requests/second")
	conc := fs.Int("c", 16, "concurrent in-flight requests")
	dur := fs.Duration("duration", 10*time.Second, "measured run length")
	seed := fs.Int64("seed", 1, "traffic sequence seed")
	churn := fs.Duration("churn", 0, "rebuild and republish the generation this often during the run (self-serve only; 0 = off)")
	baseline := fs.String("baseline", "", "write the report to this file as the new baseline")
	gatePath := fs.String("gate", "", "compare against this baseline; exit nonzero on regression")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of the summary table")
	cfg.BindCorpusFlags(fs)
	fs.Float64Var(&cfg.Rate, "rate", cfg.Rate, "self-served query API admission rate (0 disables; loadtest default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := loadgen.ParseMix(*mixStr)
	if err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	if *target != "" && *churn > 0 {
		return fmt.Errorf("loadtest: -churn needs the self-serve mode (drop -target)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := loadgen.Options{
		Mix:         mix,
		QPS:         *qps,
		Concurrency: *conc,
		Duration:    *dur,
		Seed:        *seed,
	}

	var eng *engine.Engine
	var preRunWindows int
	if *target != "" {
		// A comma-separated -target is a fleet (leader plus followers):
		// workers rotate across the nodes request by request.
		for _, u := range strings.Split(*target, ",") {
			if u = strings.TrimSpace(u); u != "" {
				opts.Targets = append(opts.Targets, strings.TrimRight(u, "/"))
			}
		}
		if len(opts.Targets) == 0 {
			return fmt.Errorf("loadtest: -target %q names no servers", *target)
		}
		opts.BaseURL = opts.Targets[0]
	} else {
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("loadtest: %w", err)
		}
		eng, err = engine.New(cfg)
		if err != nil {
			return fmt.Errorf("loadtest: %w", err)
		}
		obs.SetLevel(cfg.SlogLevel())
		gen, err := eng.Rebuild(ctx)
		if err != nil {
			return err
		}
		// Site traffic hits real generated pages, not guessed paths.
		opts.SitePaths = sitePaths(gen, 32)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: eng.Mux()}
		go srv.Serve(ln)
		defer srv.Close()
		opts.BaseURL = "http://" + ln.Addr().String()

		// Warm each endpoint once (index build, first page render),
		// then absorb everything observed so far — including traffic
		// from earlier runs in this process, since the metrics registry
		// is global — into a pre-run window. The SLO verdicts below are
		// evaluated over only the windows collected after this point,
		// so they judge this run, not process history.
		for _, p := range []string{"/api/v1/search?q=parallel", "/api/v1/activities", "/api/v1/facets", "/"} {
			if resp, err := http.Get(opts.BaseURL + p); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		opts.SkipPrime = true
		eng.Rollup().Collect()
		preRunWindows = eng.Rollup().Windows()

		// The rollup's serve-time cadence (5s) would leave a short run
		// with zero complete windows; tick it fast enough that the SLO
		// engine has data the moment the run ends.
		tick := 500 * time.Millisecond
		if *dur < 2*time.Second {
			tick = *dur / 4
		}
		tickCtx, stopTick := context.WithCancel(ctx)
		defer stopTick()
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-t.C:
					eng.Rollup().Collect()
				}
			}
		}()

		if *churn > 0 {
			opts.Churn = func() error { _, err := eng.Rebuild(ctx); return err }
			opts.ChurnEvery = *churn
		}
	}

	rep, err := loadgen.Run(ctx, opts)
	if err != nil {
		return fmt.Errorf("loadtest: %w", err)
	}
	bi := engine.ReadBuildInfo()
	rep.Build = loadgen.BuildStamp{
		Version:   bi.Version,
		GoVersion: bi.GoVersion,
		Revision:  bi.Revision,
		Modified:  bi.Modified,
	}
	if eng != nil {
		// Final collect, then evaluate over only this run's windows
		// (everything after the pre-run absorb) so the verdicts judge
		// the run, not whatever this process did before it.
		eng.Rollup().Collect()
		runWindows := eng.Rollup().Windows() - preRunWindows
		if runWindows < 1 {
			runWindows = 1
		}
		fastWindows := 12
		if runWindows < fastWindows {
			fastWindows = runWindows
		}
		rep.SLO = slo.New(obs.Default(), eng.Rollup(), slo.DefaultObjectives(), slo.Options{
			SlowWindows: runWindows,
			FastWindows: fastWindows,
		}).Evaluate()
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprint(w, rep.Text())
	}

	if *baseline != "" {
		if err := loadgen.WriteBaseline(*baseline, rep); err != nil {
			return fmt.Errorf("loadtest: write baseline: %w", err)
		}
		fmt.Fprintf(w, "baseline written to %s\n", *baseline)
	}
	if *gatePath != "" {
		base, err := loadgen.LoadBaseline(*gatePath)
		if err != nil {
			return fmt.Errorf("loadtest: %w", err)
		}
		if base.Config.Mix != rep.Config.Mix || base.Config.QPS != rep.Config.QPS {
			fmt.Fprintf(w, "note: run config differs from baseline (%s @ %g qps vs %s @ %g qps); thresholds still apply\n",
				rep.Config.Mix, rep.Config.QPS, base.Config.Mix, base.Config.QPS)
		}
		violations := loadgen.Gate(base, rep, loadgen.GateOptions{})
		if len(violations) == 0 {
			fmt.Fprintf(w, "gate PASS against %s\n", *gatePath)
			return nil
		}
		for _, v := range violations {
			fmt.Fprintln(w, v)
		}
		return fmt.Errorf("gate FAIL: %d objective(s) violated against %s", len(violations), *gatePath)
	}
	return nil
}

// sitePaths converts up to max generated page keys ("index.html",
// "activities/slug/index.html") into request paths ("/",
// "/activities/slug/") for the site traffic class.
func sitePaths(gen *engine.Generation, max int) []string {
	var out []string
	for _, p := range gen.Site.Paths() {
		if !strings.HasSuffix(p, "index.html") {
			continue
		}
		out = append(out, "/"+strings.TrimSuffix(p, "index.html"))
		if len(out) == max {
			break
		}
	}
	return out
}
