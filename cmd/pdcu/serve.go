package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/fleet"
	"pdcunplugged/internal/obs/trace"
	"pdcunplugged/internal/replica"
)

// cmdServe is a thin shell over the engine: resolve the layered config,
// publish the first generation, hand the engine's mux to an http.Server,
// and start the watch loop when asked. All serving state lives in the
// engine; this function only owns process concerns (signals, shutdown).
//
// Replication changes where the first generation comes from, not how it
// is served. A leader builds it locally (after cold-starting from
// -snapshot-dir when one is cached, with the real build proceeding in
// the background); a follower (-follow) never builds — it cold-starts
// from its snapshot cache and converges to the leader via the long-poll
// fetch loop. Either way every node serves /replica/v1/, so followers
// can fan out snapshots to further followers.
func cmdServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg, err := engine.FromEnv()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	cfg.BindServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	obs.SetLevel(cfg.SlogLevel())
	trace.SetDefault(eng.Tracer())
	log := obs.Logger()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Cold start: a cached snapshot makes the node ready in milliseconds,
	// before any build or fetch. A corrupt cache is logged and ignored —
	// the normal path below produces the first generation instead.
	var cold *engine.Generation
	if cfg.SnapshotDir != "" {
		g, _, err := replica.Load(cfg.SnapshotDir)
		if err != nil {
			log.Warn("snapshot cache unusable; starting cold", "dir", cfg.SnapshotDir, "err", err)
		} else if g != nil && eng.Adopt(g) {
			cold = g
		}
	}

	if cfg.Follow == "" {
		replica.SetRole("leader")
		if cold != nil {
			go func() {
				if _, err := eng.Rebuild(ctx); err != nil && ctx.Err() == nil {
					log.Warn("background rebuild failed; serving cold-started generation", "err", err)
				}
			}()
		} else if _, err := eng.Rebuild(ctx); err != nil {
			return err
		}
	} else {
		replica.SetRole("follower")
		host, _ := os.Hostname()
		fol := &replica.Follower{
			Eng:    eng,
			Base:   strings.TrimRight(cfg.Follow, "/"),
			Node:   fmt.Sprintf("%s-%d", host, os.Getpid()),
			Dir:    cfg.SnapshotDir,
			Self:   cfg.Advertise,
			Tracer: eng.Tracer(),
		}
		// Fleet observability from the follower's seat: federated
		// metrics label this node by its follower name, the leader is
		// the one peer to scrape and to stitch traces from, and /readyz
		// reports the replication position.
		eng.SetSelfNode(fol.Node)
		eng.SetPeerSource(func() []fleet.Peer {
			return []fleet.Peer{{Node: "leader", URL: fol.Base}}
		})
		eng.SetReadyExtra(func() map[string]any {
			return map[string]any{
				"role":        "follower",
				"leader":      fol.Base,
				"replica_lag": fol.Lag(),
			}
		})
		go func() {
			if err := fol.Run(ctx); err != nil && ctx.Err() == nil {
				log.Warn("follower loop stopped", "err", err)
			}
		}()
	}

	// Every node serves the replication endpoints: a leader feeds its
	// followers, and a follower can relay snapshots further down a tree.
	leader := replica.NewLeader(eng)
	if cfg.Follow == "" && cfg.SnapshotDir != "" {
		leader.AutoSave(cfg.SnapshotDir)
	}
	if cfg.Follow == "" {
		// The leader's fleet roster comes from follower heartbeats:
		// every follower that advertises a URL becomes a federation
		// target, and /readyz reports how far the worst one trails.
		eng.SetPeerSource(func() []fleet.Peer {
			var peers []fleet.Peer
			for _, f := range leader.FleetStatus().Followers {
				if f.URL != "" {
					peers = append(peers, fleet.Peer{Node: f.Node, URL: f.URL})
				}
			}
			return peers
		})
		eng.SetReadyExtra(func() map[string]any {
			st := leader.FleetStatus()
			var maxLag int64
			for _, f := range st.Followers {
				if f.Lag > maxLag {
					maxLag = f.Lag
				}
			}
			return map[string]any{
				"role":          "leader",
				"followers":     len(st.Followers),
				"fleet_max_lag": maxLag,
			}
		})
	}
	mux := eng.Mux()
	// The replication endpoints go through the request middleware so a
	// follower's traceparent-carrying snapshot fetch records the serve
	// side of the trace here — that is the leader half of a stitched
	// cross-node waterfall.
	mux.Handle("/replica/v1/", eng.Middleware().Wrap(leader.Handler()))

	srv := &http.Server{
		Addr:              cfg.Addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      3 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}

	go eng.Rollup().Run(ctx)
	if cfg.FleetScrape > 0 {
		go eng.Fleet().Run(ctx)
	}
	if cfg.Watch {
		go func() {
			if err := eng.Watch(ctx); err != nil && ctx.Err() == nil {
				log.Warn("watcher stopped", "err", err)
			}
		}()
	}

	pages, genID := 0, ""
	if g := eng.Current(); g != nil {
		pages, genID = g.Site.Len(), g.ID
	}
	fmt.Fprintf(w, "serving %d pages on %s (query API: /api/v1/, replication: /replica/v1/, metrics: /metrics, health: /healthz /readyz, dashboard: /debug/obs", pages, cfg.Addr)
	if cfg.Pprof {
		fmt.Fprint(w, ", pprof: /debug/pprof/")
	}
	if cfg.Watch {
		fmt.Fprintf(w, ", watching %s every %s", cfg.SourcesSummary(), cfg.Poll)
	}
	if cfg.Follow != "" {
		fmt.Fprintf(w, ", following %s", cfg.Follow)
	}
	if cfg.FleetScrape > 0 {
		fmt.Fprintf(w, ", fleet scrape every %s (/metrics/fleet)", cfg.FleetScrape)
	}
	fmt.Fprintln(w, ")")
	log.Info("server starting", "addr", cfg.Addr, "pages", pages,
		"generation", genID, "pprof", cfg.Pprof, "watch", cfg.Watch, "follow", cfg.Follow)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Info("shutdown signal received, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("graceful shutdown incomplete, forcing close", "err", err)
		srv.Close()
		return err
	}
	log.Info("server stopped cleanly")
	fmt.Fprintln(w, "server stopped")
	return nil
}
