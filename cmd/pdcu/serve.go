package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/obs"
	"pdcunplugged/internal/obs/trace"
)

// cmdServe is a thin shell over the engine: resolve the layered config,
// publish the first generation, hand the engine's mux to an http.Server,
// and start the watch loop when asked. All serving state lives in the
// engine; this function only owns process concerns (signals, shutdown).
func cmdServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg, err := engine.FromEnv()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	cfg.BindServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	obs.SetLevel(cfg.SlogLevel())
	trace.SetDefault(eng.Tracer())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	gen, err := eng.Rebuild(ctx)
	if err != nil {
		return err
	}

	log := obs.Logger()
	srv := &http.Server{
		Addr:              cfg.Addr,
		Handler:           eng.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}

	go eng.Rollup().Run(ctx)
	if cfg.Watch {
		go func() {
			if err := eng.Watch(ctx); err != nil && ctx.Err() == nil {
				log.Warn("watcher stopped", "err", err)
			}
		}()
	}

	fmt.Fprintf(w, "serving %d pages on %s (query API: /api/v1/, metrics: /metrics, health: /healthz /readyz, dashboard: /debug/obs", gen.Site.Len(), cfg.Addr)
	if cfg.Pprof {
		fmt.Fprint(w, ", pprof: /debug/pprof/")
	}
	if cfg.Watch {
		fmt.Fprintf(w, ", watching %s every %s", cfg.Src, cfg.Poll)
	}
	fmt.Fprintln(w, ")")
	log.Info("server starting", "addr", cfg.Addr, "pages", gen.Site.Len(),
		"generation", gen.ID, "pprof", cfg.Pprof, "watch", cfg.Watch)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Info("shutdown signal received, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Warn("graceful shutdown incomplete, forcing close", "err", err)
		srv.Close()
		return err
	}
	log.Info("server stopped cleanly")
	fmt.Fprintln(w, "server stopped")
	return nil
}
