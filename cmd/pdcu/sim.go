package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pdcunplugged"
	"pdcunplugged/internal/report"
	"pdcunplugged/internal/sim"
)

func cmdSim(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: pdcu sim <list|run> ...")
	}
	switch args[0] {
	case "list":
		tb := report.New("ACTIVITY DRAMATIZATIONS", "Name", "Shows")
		for _, name := range pdcunplugged.Simulations() {
			a, _ := sim.Get(name)
			tb.AddRow(name, a.Summary())
		}
		fmt.Fprint(w, tb.String())
		return nil
	case "run":
		return cmdSimRun(args[1:], w)
	case "sweep":
		return cmdSimSweep(args[1:], w)
	case "measure":
		return cmdSimMeasure(args[1:], w)
	default:
		return fmt.Errorf("unknown sim subcommand %q", args[0])
	}
}

func cmdSimMeasure(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sim measure", flag.ContinueOnError)
	metric := fs.String("metric", "", "counter or gauge to summarize (required)")
	runs := fs.Int("runs", 30, "number of seeded runs")
	n := fs.Int("n", 0, "participants (0 = activity default)")
	workers := fs.Int("workers", 0, "workers (0 = activity default)")
	seed := fs.Int64("seed", 1, "base seed")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu sim measure <name> -metric M [-runs N]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	d, err := sim.Measure(name, *metric, sim.Config{
		Participants: *n, Workers: *workers, Seed: *seed,
	}, *runs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, d)
	if d.Violations > 0 {
		return fmt.Errorf("%d runs violated the invariant", d.Violations)
	}
	return nil
}

func cmdSimSweep(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sim sweep", flag.ContinueOnError)
	vary := fs.String("vary", "participants", "dimension to vary: participants, workers, seed, or a param name")
	values := fs.String("values", "", "comma-separated grid values (required)")
	metric := fs.String("metric", "", "counter or gauge to collect (required)")
	repeats := fs.Int("repeats", 1, "average each point over this many seeds")
	seed := fs.Int64("seed", 1, "base seed")
	csv := fs.Bool("csv", false, "emit CSV instead of an ASCII plot")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu sim sweep <name> -values 8,16,32 -metric rounds [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var grid []float64
	for _, v := range splitCSV(*values) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad grid value %q: %w", v, err)
		}
		grid = append(grid, f)
	}
	series, err := sim.Sweep{
		Activity: name,
		Vary:     *vary,
		Values:   grid,
		Metric:   *metric,
		Base:     sim.Config{Seed: *seed},
		Repeats:  *repeats,
	}.Run()
	if err != nil {
		return err
	}
	if *csv {
		fmt.Fprint(w, series.CSV())
	} else {
		fmt.Fprint(w, series.AsciiPlot(40))
	}
	if !series.AllOK() {
		return fmt.Errorf("invariant violated at one or more grid points")
	}
	return nil
}

type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]float64(p)) }

func (p paramFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("param must be key=value, got %q", v)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("param %s: %w", k, err)
	}
	p[k] = f
	return nil
}

func cmdSimRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sim run", flag.ContinueOnError)
	n := fs.Int("n", 0, "participants (0 = activity default)")
	workers := fs.Int("workers", 0, "workers (0 = activity default)")
	seed := fs.Int64("seed", 1, "random seed")
	trace := fs.Bool("trace", false, "print the narration transcript")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	params := paramFlags{}
	fs.Var(params, "param", "activity-specific knob key=value (repeatable)")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: pdcu sim run <name> [flags]")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	rep, err := pdcunplugged.Simulate(name, pdcunplugged.SimConfig{
		Participants: *n,
		Workers:      *workers,
		Seed:         *seed,
		Trace:        *trace,
		Params:       params,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := rep.WriteJSON()
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
	} else {
		fmt.Fprintln(w, rep.Summary())
		if *trace {
			fmt.Fprint(w, rep.Tracer.Transcript())
		}
	}
	if !rep.OK {
		return fmt.Errorf("invariant violated")
	}
	return nil
}
