package main

import (
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"pdcunplugged/internal/replica"
)

// TestRollupWindowsSpanAdopt pins the rollup's behavior across a
// follower generation swap: counters in the metrics registry are
// process-global and survive Adopt(), so a window that spans the swap
// must report exactly the requests served in that window — not an
// absolute re-baseline, which is what the rollup's counter-reset
// clamping would produce if Adopt were (wrongly) treated as a restart.
func TestRollupWindowsSpanAdopt(t *testing.T) {
	ctx := context.Background()

	// The "leader" exists only to mint snapshots at increasing Seq.
	leaderEng := builtEngine(t, nil)
	snapshot := func() []byte {
		t.Helper()
		data, err := replica.Encode(leaderEng.Current())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// The node under test adopts snapshots the way a follower does.
	eng := testEngine(t, nil)
	adopt := func(data []byte) {
		t.Helper()
		g, err := replica.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !eng.Adopt(g) {
			t.Fatal("snapshot not adopted")
		}
	}
	adopt(snapshot())
	srv := httptest.NewServer(eng.Mux())
	defer srv.Close()

	query := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			resp, err := http.Get(srv.URL + "/api/v1/search?q=parallel")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query = %d", resp.StatusCode)
			}
		}
	}
	ru := eng.Rollup()
	windowTotal := func(family string) float64 {
		t.Helper()
		var sum float64
		seen := false
		for _, ts := range ru.Series(family) {
			if len(ts.Values) == 0 {
				continue
			}
			v := ts.Values[len(ts.Values)-1].V
			if !math.IsNaN(v) {
				sum += v
				seen = true
			}
		}
		if !seen {
			t.Fatalf("family %s has no window data", family)
		}
		return sum
	}

	// Window 1 absorbs process history (the registry is global); the
	// windows under test are clean deltas from here on.
	ru.Collect()

	query(7)
	ru.Collect()
	if got := windowTotal("pdcu_query_requests_total"); got != 7 {
		t.Fatalf("pre-adopt window counted %.0f query requests, want 7", got)
	}

	// Generation swap mid-stream: the leader republished, the follower
	// adopts the codec round-trip — with queries on both sides of the
	// swap inside one rollup window.
	query(2)
	if _, err := leaderEng.Rebuild(ctx); err != nil {
		t.Fatal(err)
	}
	adopt(snapshot())
	query(3)
	ru.Collect()
	if got := windowTotal("pdcu_query_requests_total"); got != 5 {
		t.Fatalf("window spanning Adopt counted %.0f query requests, want 5 (clamped as a reset?)", got)
	}

	// The latency histogram's count-delta must agree — the same
	// reset-clamping rule covers histogram sum/count.
	query(4)
	ru.Collect()
	var histCount float64
	for _, ts := range ru.Series("pdcu_query_duration_seconds") {
		if len(ts.Counts) == 0 {
			continue
		}
		if v := ts.Counts[len(ts.Counts)-1].V; !math.IsNaN(v) {
			histCount += v
		}
	}
	if histCount != 4 {
		t.Fatalf("post-adopt window's histogram count-delta = %.0f, want 4", histCount)
	}
}
