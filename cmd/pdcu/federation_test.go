package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"pdcunplugged/internal/engine"
	"pdcunplugged/internal/query"
	"pdcunplugged/internal/replica"
	"pdcunplugged/internal/search"
)

// federationValidBody is a complete, taxonomy-valid submission in the
// curated frontmatter format; the contrib endpoint must accept it.
const federationValidBody = `---
title: "Federation Relay Probe"
date: "2026-01-01"
cs2013: ["PD_ParallelDecomposition"]
tcpp: ["TCPP_Algorithms"]
courses: ["CS1"]
senses: ["visual"]
cs2013details: ["PD_2"]
tcppdetails: ["C_Reduction"]
medium: ["cards"]
---

## Original Author/link

Federation smoke fixture.

---

## Details

Students relay a token across two rows to feel message latency.
`

// TestFederationSmoke is the multi-corpus tier end to end, the way
// `make federation-smoke` gates it: a leader federating two catalogs,
// the ?source= query dimension and per-source facet counts, the
// contribution-validation endpoint (accepted and needs-work paths),
// and a follower that adopts the federated PDCUSNP2 snapshot and
// validates submissions without ever building an index locally.
func TestFederationSmoke(t *testing.T) {
	leader := newReplicaNode(t, builtEngine(t, func(c *engine.Config) {
		c.Catalogs = engine.CatalogList{"builtin", "csinparallel"}
		c.ContribRate = 0 // the smoke run must not shed its own probes
	}))

	// The snapshot surface speaks the federated codec revision.
	code, _, snap := leader.get(t, "/replica/v1/snapshot")
	if code != http.StatusOK || !bytes.HasPrefix(snap, []byte("PDCUSNP2")) {
		t.Fatalf("snapshot = %d %.8s, want 200 PDCUSNP2", code, snap)
	}

	// ?source= filters on the per-source bitset dimension.
	code, _, body := leader.get(t, "/api/v1/activities?source=csinparallel")
	if code != http.StatusOK {
		t.Fatalf("activities?source= = %d (%s)", code, body)
	}
	var acts struct {
		Count      int `json:"count"`
		Activities []struct {
			Slug   string `json:"slug"`
			Source string `json:"source"`
		} `json:"activities"`
	}
	if err := json.Unmarshal(body, &acts); err != nil {
		t.Fatal(err)
	}
	if acts.Count != 5 || len(acts.Activities) != 5 {
		t.Fatalf("csinparallel activities = %d, want the 5 csp assignments", acts.Count)
	}
	for _, a := range acts.Activities {
		if !strings.HasPrefix(a.Slug, "csp-") || a.Source != "csinparallel" {
			t.Errorf("activity %q source %q, want csp-* from csinparallel", a.Slug, a.Source)
		}
	}

	// The facets endpoint grows a per-source dimension under federation.
	code, _, body = leader.get(t, "/api/v1/facets")
	if code != http.StatusOK {
		t.Fatalf("facets = %d", code)
	}
	var facets query.FacetsResponse
	if err := json.Unmarshal(body, &facets); err != nil {
		t.Fatal(err)
	}
	if got := facets.Facets["source"]; got["builtin"] != 38 || got["csinparallel"] != 5 {
		t.Fatalf("source facet = %v, want builtin:38 csinparallel:5", got)
	}

	// Contribution validation round-trip: a valid submission is accepted,
	// a broken one comes back structured (HTTP 200, accepted=false).
	postValidate := func(n *replicaNode, slug, content string) *query.ContribValidation {
		t.Helper()
		resp, err := http.Post(n.srv.URL+"/api/v1/contrib/validate?slug="+slug,
			"text/markdown", strings.NewReader(content))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("contrib validate = %d (%s)", resp.StatusCode, raw)
		}
		if gen := resp.Header.Get("Pdcu-Generation"); gen != n.eng.Current().ID {
			t.Errorf("contrib tagged %q, want generation %q", gen, n.eng.Current().ID)
		}
		var v query.ContribValidation
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		return &v
	}
	if v := postValidate(leader, "federation-probe", federationValidBody); !v.Accepted {
		t.Errorf("valid submission rejected: %v", v.Errors)
	}
	if v := postValidate(leader, "broken", "---\ntitle: unterminated"); v.Accepted || len(v.Errors) == 0 {
		t.Errorf("broken submission = accepted=%v errors=%v, want rejection with errors", v.Accepted, v.Errors)
	}

	// A follower adopts the federated snapshot and serves the same
	// source-filtered responses — and validates contributions against
	// the snapshot's shipped index, never building one itself.
	buildBefore := search.BuildCalls()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	follower := newReplicaNode(t, testEngine(t, func(c *engine.Config) { c.ContribRate = 0 }))
	go (&replica.Follower{Eng: follower.eng, Base: leader.srv.URL, Node: "fed-f1"}).Run(ctx)
	waitConverged(t, leader.eng, follower.eng)

	_, _, want := leader.get(t, "/api/v1/activities?source=csinparallel")
	_, _, got := follower.get(t, "/api/v1/activities?source=csinparallel")
	if !bytes.Equal(want, got) {
		t.Errorf("follower source-filtered body differs from leader (%d vs %d bytes)", len(got), len(want))
	}
	if v := postValidate(follower, "federation-probe", federationValidBody); !v.Accepted {
		t.Errorf("follower rejected valid submission: %v", v.Errors)
	}
	if n := search.BuildCalls() - buildBefore; n != 0 {
		t.Errorf("follower ran %d index builds; snapshot adoption plus contrib validation must run zero", n)
	}
}
