package pdcunplugged_test

// Benchmarks for the /api/v1 query-serving subsystem: the cold render
// path (parse + search + encode on every request), the generation-keyed
// cache hit path, and the coalesced path where concurrent identical
// misses share one render.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"pdcunplugged"
	"pdcunplugged/internal/query"
)

func queryBenchSnapshot(b testing.TB) *query.Snapshot {
	b.Helper()
	repo, err := pdcunplugged.Open()
	if err != nil {
		b.Fatal(err)
	}
	return query.NewSnapshot(repo)
}

func serveOnce(b testing.TB, h http.Handler, target string) {
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s = %d: %s", target, rec.Code, rec.Body)
	}
}

func BenchmarkQueryServe(b *testing.B) {
	snap := queryBenchSnapshot(b)
	const target = "/api/v1/search?q=sorting+cards&limit=10"

	// cold: a fresh service per iteration, so every request renders.
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := query.New(snap, query.Options{})
			serveOnce(b, s.Handler(), target)
		}
	})

	// cached: one warm service; every request is a generation-keyed hit.
	b.Run("cached", func(b *testing.B) {
		s := query.New(snap, query.Options{})
		h := s.Handler()
		serveOnce(b, h, target) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, target)
		}
	})

	// coalesced: a one-entry cache and two alternating queries keep every
	// request a miss, so concurrent identical misses pile onto the
	// singleflight leader instead of rendering independently.
	b.Run("coalesced", func(b *testing.B) {
		s := query.New(snap, query.Options{CacheSize: 1})
		h := s.Handler()
		queries := [2]string{"sorting+cards", "token+ring"}
		var n atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q := queries[n.Add(1)%2]
				serveOnce(b, h, fmt.Sprintf("/api/v1/search?q=%s&limit=10", q))
			}
		})
	})
}

// TestQueryCachedSpeedup pins the acceptance bound: answering a repeated
// query from the generation-keyed cache is at least 10x faster than
// rendering it cold. The realistic margin is far larger (a cache hit is
// a map lookup; a cold render tokenizes, walks postings, ranks and
// re-encodes), so the 10x floor stays safe on loaded CI machines.
func TestQueryCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	snap := queryBenchSnapshot(t)
	const target = "/api/v1/search?q=sorting+cards&limit=10"

	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := query.New(snap, query.Options{})
			serveOnce(b, s.Handler(), target)
		}
	})
	cached := testing.Benchmark(func(b *testing.B) {
		s := query.New(snap, query.Options{})
		h := s.Handler()
		serveOnce(b, h, target)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, h, target)
		}
	})
	coldNs, cachedNs := cold.NsPerOp(), cached.NsPerOp()
	if cachedNs <= 0 || coldNs < 10*cachedNs {
		t.Errorf("cached path %d ns/op vs cold %d ns/op: want >= 10x speedup", cachedNs, coldNs)
	}
	t.Logf("cold %d ns/op, cached %d ns/op (%.0fx)", coldNs, cachedNs, float64(coldNs)/float64(cachedNs))
}
