package pdcunplugged_test

// Benchmarks for the search/index core: the cold scoring loop, top-k
// ranking, prefix suggestion, and the faceted /api/v1/activities filter
// path. These are the benchmarks whose results persist to
// BENCH_search.json and are regression-gated by `make bench-index`
// (bench_index_gate_test.go); keep their names and shapes stable so the
// committed trajectory stays comparable across PRs.

import (
	"testing"

	"pdcunplugged"
	"pdcunplugged/internal/query"
	"pdcunplugged/internal/search"
)

// benchQueries rotates realistic corpus queries through the scoring
// loop: common terms, multi-token queries, a hyphenated compound, a
// taxonomy tag, and one guaranteed miss.
var benchQueries = []string{
	"parallel sort",
	"sorting cards",
	"byzantine generals traitors",
	"message passing deadlock",
	"odd-even transposition",
	"pipeline throughput",
	"TCPP_Architecture",
	"quantum zebra",
}

// benchFilters is the faceted listing the filtered-path benchmark
// exercises: two facets, so the intersection actually narrows.
var benchFilters = map[string]string{"course": "CS1", "sense": "touch"}

func BenchmarkSearchCold(b *testing.B) {
	snap := queryBenchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := snap.Index.Search(benchQueries[i%len(benchQueries)], 0); i%len(benchQueries) == 0 && len(hits) == 0 {
			b.Fatal("no hits for a corpus query")
		}
	}
}

func BenchmarkSearchTopK(b *testing.B) {
	snap := queryBenchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Index.Search(benchQueries[i%len(benchQueries)], 10)
	}
}

func BenchmarkSuggest(b *testing.B) {
	snap := queryBenchSnapshot(b)
	prefixes := []string{"par", "sor", "de", "me"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := snap.Index.Suggest(prefixes[i%len(prefixes)], 5); len(out) == 0 {
			b.Fatal("no suggestions for a corpus prefix")
		}
	}
}

func BenchmarkActivitiesFilter(b *testing.B) {
	snap := queryBenchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := query.Activities(snap, benchFilters); resp.Count == 0 {
			b.Fatal("filtered listing came back empty")
		}
	}
}

func BenchmarkFacetCounts(b *testing.B) {
	snap := queryBenchSnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := query.Facets(snap); len(resp.Facets) == 0 {
			b.Fatal("no facets")
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	repo, err := pdcunplugged.Open()
	if err != nil {
		b.Fatal(err)
	}
	acts := repo.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix := search.Build(acts); ix.Len() != len(acts) {
			b.Fatal("index lost documents")
		}
	}
}
