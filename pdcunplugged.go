// Package pdcunplugged is a Go reproduction of "PDCunplugged: A Free
// Repository of Unplugged Parallel & Distributed Computing Activities"
// (Matthews, IPDPSW 2020): the complete repository system — content model,
// Hugo-style taxonomy engine, static-site generator — together with the
// curated 38-activity corpus whose statistics the paper reports, the
// coverage analytics behind Tables I and II, and runnable goroutine
// dramatizations of every activity family in the curation.
//
// The quickest start:
//
//	repo, err := pdcunplugged.Open()          // the curated corpus
//	rows := pdcunplugged.TableI(repo)         // the paper's Table I
//	rep, err := pdcunplugged.Simulate("oddeven", pdcunplugged.SimConfig{Trace: true})
package pdcunplugged

import (
	"io/fs"

	"pdcunplugged/internal/activity"
	"pdcunplugged/internal/assess"
	"pdcunplugged/internal/bib"
	"pdcunplugged/internal/contrib"
	"pdcunplugged/internal/core"
	"pdcunplugged/internal/corpus"
	"pdcunplugged/internal/coverage"
	"pdcunplugged/internal/curation"
	"pdcunplugged/internal/plan"
	"pdcunplugged/internal/search"
	"pdcunplugged/internal/sim"
	_ "pdcunplugged/internal/sim/activities" // register all dramatizations
	"pdcunplugged/internal/site"
)

// Repository is a validated, taxonomy-indexed collection of unplugged
// activities with the CS2013 / TCPP / Courses / Accessibility views.
type Repository = core.Repository

// Activity is one unplugged PDC activity: the Fig. 1 sections plus the six
// taxonomy tag sets.
type Activity = activity.Activity

// Coverage analytics result types (Tables I and II and Section III stats).
type (
	// CS2013Row is one row of Table I.
	CS2013Row = coverage.CS2013Row
	// TCPPRow is one row of Table II.
	TCPPRow = coverage.TCPPRow
	// SubcategoryRow is one row of the Section III-C sub-category table.
	SubcategoryRow = coverage.SubcategoryRow
	// TermCount pairs a taxonomy term with its activity count.
	TermCount = coverage.TermCount
	// SenseStat is a per-sense count and corpus share.
	SenseStat = coverage.SenseStat
	// Gaps lists uncovered outcomes and topics.
	Gaps = coverage.Gaps
)

// Simulation types.
type (
	// SimConfig parameterizes a dramatization run.
	SimConfig = sim.Config
	// SimReport is a dramatization outcome with metrics and narration.
	SimReport = sim.Report
)

// Site is a built static site (path -> page bytes).
type Site = site.Site

// Open returns the embedded curated corpus: the 38 activities the paper's
// evaluation is computed over, loaded through the full Markdown pipeline.
func Open() (*Repository, error) {
	return curation.Repository()
}

// CorpusFiles returns the curated corpus as rendered Markdown files keyed
// by slug — the content/activities folder of the paper's GitHub layout.
func CorpusFiles() map[string]string {
	return curation.Files()
}

// Load builds a repository from raw Markdown file contents keyed by slug.
func Load(files map[string]string) (*Repository, error) {
	return core.Load(files)
}

// LoadFS builds a repository from every .md file under dir in fsys.
func LoadFS(fsys fs.FS, dir string) (*Repository, error) {
	return core.LoadFS(fsys, dir)
}

// ParseActivity parses one activity Markdown file.
func ParseActivity(slug, content string) (*Activity, error) {
	return activity.Parse(slug, content)
}

// ActivityTemplate returns the Fig. 1 archetype a contributor starts from
// (the `hugo new activities/<slug>.md` equivalent).
func ActivityTemplate(title string) string {
	return activity.Template(title)
}

// TableI computes the paper's Table I (CS2013 coverage) over a repository.
func TableI(r *Repository) []CS2013Row { return coverage.TableI(r) }

// TableII computes the paper's Table II (TCPP coverage) over a repository.
func TableII(r *Repository) []TCPPRow { return coverage.TableII(r) }

// Subcategories computes the Section III-C sub-category coverage.
func Subcategories(r *Repository) []SubcategoryRow { return coverage.Subcategories(r) }

// CourseCounts computes the Section III-A per-course activity counts.
func CourseCounts(r *Repository) []TermCount { return coverage.CourseCounts(r) }

// MediumCounts computes the Section III-D per-medium activity counts.
func MediumCounts(r *Repository) []TermCount { return coverage.MediumCounts(r) }

// SenseStats computes the Section III-D per-sense counts and percentages.
func SenseStats(r *Repository) []SenseStat { return coverage.SenseStats(r) }

// FindGaps lists every uncovered learning outcome and core topic: the
// paper's "where should educators concentrate" answer.
func FindGaps(r *Repository) Gaps { return coverage.FindGaps(r) }

// Impact scores a proposed activity by how many currently-uncovered
// outcome/topic terms it would cover.
func Impact(r *Repository, cs2013Details, tcppDetails []string) (int, []string, error) {
	return coverage.Impact(r, cs2013Details, tcppDetails)
}

// Simulate runs a registered activity dramatization by name.
func Simulate(name string, cfg SimConfig) (*SimReport, error) {
	return sim.Run(name, cfg)
}

// Simulations returns the names of all registered dramatizations.
func Simulations() []string { return sim.Names() }

// SimulationFor returns the dramatization that rehearses an activity
// from any registered corpus source (ok is false when none is linked).
func SimulationFor(slug string) (string, bool) { return corpus.SimulationFor(slug) }

// CorpusSource is one corpus adapter: a named provider of activities
// that can be federated into a single repository.
type CorpusSource = corpus.Source

// BuiltinSource is the embedded 38-activity curation as a corpus source.
func BuiltinSource() CorpusSource { return corpus.Builtin() }

// DirSource adapts a directory tree of activity .md files as a corpus
// source (an empty name derives one from the directory's base name).
func DirSource(name, path string) CorpusSource { return corpus.Dir(name, path) }

// CatalogSource resolves a built-in named catalog ("builtin",
// "csinparallel") as a corpus source.
func CatalogSource(name string) (CorpusSource, error) { return corpus.Catalog(name) }

// OpenSources federates any number of corpus sources into one
// repository, stamping every activity with its source's name and
// rejecting cross-source slug collisions. No sources selects the
// builtin curation.
func OpenSources(sources ...CorpusSource) (*Repository, error) {
	return corpus.LoadAll(sources...)
}

// BuildSite renders the repository to a static site with a one-shot
// builder (one worker per CPU, no cache reuse across calls).
func BuildSite(r *Repository) (*Site, error) { return site.Build(r) }

// SiteBuilder schedules the page graph onto a bounded worker pool and
// keeps a fingerprint-keyed page cache across builds, so repeated
// builds of a slightly-changed repository re-render only the affected
// jobs.
type SiteBuilder = site.Builder

// SiteBuildOptions configures a SiteBuilder.
type SiteBuildOptions = site.Options

// SiteBuildStats summarizes one SiteBuilder build (jobs, cache hits and
// misses, pool size, duration).
type SiteBuildStats = site.BuildStats

// NewSiteBuilder returns a site builder with an empty page cache.
func NewSiteBuilder(opts SiteBuildOptions) *SiteBuilder { return site.NewBuilder(opts) }

// BuildSiteParallel renders the repository with a bounded worker pool
// (workers <= 0 selects one per CPU). Output is byte-identical to
// BuildSite regardless of worker count.
func BuildSiteParallel(r *Repository, workers int) (*Site, error) {
	return site.NewBuilder(site.Options{Workers: workers}).Build(r)
}

// Reference is one bibliography entry of the curated literature.
type Reference = bib.Reference

// Bibliography returns the full citation database, year-ordered.
func Bibliography() []Reference { return bib.All() }

// ResolveCitation matches a free-text citation to a bibliography entry.
func ResolveCitation(text string) (Reference, bool) { return bib.Resolve(text) }

// ExportBibTeX renders references as BibTeX (all of them when refs is nil).
func ExportBibTeX(refs []Reference) string { return bib.Export(refs) }

// CitationGraph resolves every activity citation and groups activities by
// shared sources (the curation's variation clusters).
type CitationGraph = bib.Graph

// BuildCitationGraph builds the citation graph over a repository.
func BuildCitationGraph(r *Repository) *CitationGraph { return bib.BuildGraph(r.All()) }

// SearchIndex is a TF-IDF inverted index over activities.
type SearchIndex = search.Index

// SearchHit is one ranked result.
type SearchHit = search.Hit

// NewSearchIndex indexes the repository for ranked full-text search. The
// build is memoized on the repository fingerprint, so repeated calls over
// an unchanged corpus return the same immutable index.
func NewSearchIndex(r *Repository) *SearchIndex { return search.BuildCached(r.Fingerprint(), r.All()) }

// Review is a curator report on a contributed activity.
type Review = contrib.Review

// ReviewSubmission evaluates one contributed Markdown file against the
// repository: validity, nudges, duplicates, variation candidates, impact.
func ReviewSubmission(r *Repository, slug, content string) *Review {
	return contrib.Evaluate(r, slug, content)
}

// UpdateReview is a curator report on an edit to an existing activity (the
// augmentation path: assessments, variations, accessibility notes).
type UpdateReview = contrib.UpdateReview

// ReviewUpdate evaluates an edited version of an existing activity.
func ReviewUpdate(r *Repository, slug, content string) *UpdateReview {
	return contrib.EvaluateUpdate(r, slug, content)
}

// ApplyUpdate replaces an activity in a new repository, returning the
// coverage delta; the original repository is unchanged.
func ApplyUpdate(r *Repository, a *Activity) (*Repository, MergeDelta, error) {
	return contrib.ApplyUpdate(r, a)
}

// MergeDelta describes how a merge changes coverage.
type MergeDelta = contrib.Delta

// MergeActivity adds an accepted submission, returning the new repository
// and the coverage delta; the original repository is unchanged.
func MergeActivity(r *Repository, a *Activity) (*Repository, MergeDelta, error) {
	return contrib.Merge(r, a)
}

// BloomRow is per-Bloom-level TCPP coverage.
type BloomRow = coverage.BloomRow

// BloomStats computes coverage per Bloom level (Know/Comprehend/Apply).
func BloomStats(r *Repository) []BloomRow { return coverage.BloomStats(r) }

// DecadeRow counts activities per source decade.
type DecadeRow = coverage.DecadeRow

// Timeline buckets the curation by source decade — the "thirty years of
// PDC literature".
func Timeline(r *Repository) []DecadeRow { return coverage.Timeline(r) }

// AssessmentSheet is a generated pre/post assessment for one activity.
type AssessmentSheet = assess.Sheet

// AssessmentResponse is one student's pre/post answers.
type AssessmentResponse = assess.Response

// AssessmentAnalysis is the item analysis over collected responses.
type AssessmentAnalysis = assess.Analysis

// GenerateAssessment scaffolds a pre/post assessment from an activity's
// tagged learning outcomes and topics.
func GenerateAssessment(a *Activity) (*AssessmentSheet, error) { return assess.Generate(a) }

// AnalyzeAssessment computes item difficulty, discrimination and the
// normalized learning gain over collected responses.
func AnalyzeAssessment(nItems int, responses []AssessmentResponse) (*AssessmentAnalysis, error) {
	return assess.Analyze(nItems, responses)
}

// SimulatedResponses produces a deterministic synthetic class for
// exercising the analysis pipeline.
func SimulatedResponses(nItems, students int, learnRate float64, seed int64) []AssessmentResponse {
	return assess.Simulated(nItems, students, learnRate, seed)
}

// PlanConstraints narrow the workshop-planner candidate pool.
type PlanConstraints = plan.Constraints

// WorkshopPlan is a greedy maximum-coverage activity sequence.
type WorkshopPlan = plan.Plan

// BuildPlan selects the activity sequence maximizing distinct outcome and
// topic coverage under the constraints.
func BuildPlan(r *Repository, c PlanConstraints) (*WorkshopPlan, error) {
	return plan.Build(r, c)
}
