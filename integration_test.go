package pdcunplugged_test

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pdcunplugged"
	"pdcunplugged/internal/report"
)

// TestEndToEndExportReload is the full-pipeline gate: render the curated
// corpus to Markdown files on disk, reload it through the filesystem path a
// contributor's checkout would use, and verify the reloaded repository is
// observationally identical — same activities, same tables, same site.
func TestEndToEndExportReload(t *testing.T) {
	orig, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for slug, content := range pdcunplugged.CorpusFiles() {
		if err := os.WriteFile(filepath.Join(dir, slug+".md"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reloaded, err := pdcunplugged.LoadFS(os.DirFS(dir), ".")
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != orig.Len() {
		t.Fatalf("reloaded %d of %d activities", reloaded.Len(), orig.Len())
	}
	if !reflect.DeepEqual(pdcunplugged.TableI(orig), pdcunplugged.TableI(reloaded)) {
		t.Error("Table I changed across export/reload")
	}
	if !reflect.DeepEqual(pdcunplugged.TableII(orig), pdcunplugged.TableII(reloaded)) {
		t.Error("Table II changed across export/reload")
	}
	for _, slug := range orig.Slugs() {
		a, _ := orig.Get(slug)
		b, ok := reloaded.Get(slug)
		if !ok {
			t.Errorf("%s lost in reload", slug)
			continue
		}
		if a.Title != b.Title || a.Author != b.Author || a.Details != b.Details {
			t.Errorf("%s content drifted across reload", slug)
		}
		if !reflect.DeepEqual(a.CS2013Details, b.CS2013Details) || !reflect.DeepEqual(a.TCPPDetails, b.TCPPDetails) {
			t.Errorf("%s detail tags drifted", slug)
		}
	}
	s1, err := pdcunplugged.BuildSite(orig)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pdcunplugged.BuildSite(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Paths(), s2.Paths()) {
		t.Error("site page inventory changed across reload")
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run `go test -run Golden -update .`): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden copy; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenTemplate pins the Fig. 1 archetype byte-for-byte.
func TestGoldenTemplate(t *testing.T) {
	checkGolden(t, "template.md", pdcunplugged.ActivityTemplate("example"))
}

// TestGoldenActivityFile pins one curated activity's rendered Markdown.
func TestGoldenActivityFile(t *testing.T) {
	checkGolden(t, "findsmallestcard.md", pdcunplugged.CorpusFiles()["findsmallestcard"])
}

// TestGoldenSitePage pins one rendered site page (the Fig. 3 header and
// section layout).
func TestGoldenSitePage(t *testing.T) {
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "findsmallestcard.html", string(s.Pages["activities/findsmallestcard/index.html"]))
}

// TestGoldenTables pins the ASCII rendering of Tables I and II.
func TestGoldenTables(t *testing.T) {
	repo, err := pdcunplugged.Open()
	if err != nil {
		t.Fatal(err)
	}
	t1 := report.New("TABLE I: CS2013 COVERAGE",
		"Knowledge Unit", "Num LOs", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableI(repo) {
		name := r.Unit.Name
		if r.Unit.Elective {
			name += " (E)"
		}
		t1.AddRow(name, r.NumOutcomes, r.CoveredOutcomes, r.PercentCoverage(), r.TotalActivities)
	}
	t2 := report.New("TABLE II: TCPP COVERAGE",
		"Topic Area", "Num Topics", "Covered", "Percent", "Activities")
	for _, r := range pdcunplugged.TableII(repo) {
		t2.AddRow(r.Area.Name, r.NumTopics, r.CoveredTopics, r.PercentCoverage(), r.TotalActivities)
	}
	checkGolden(t, "tables.txt", t1.String()+"\n"+t2.String())
}
