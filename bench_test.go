package pdcunplugged_test

// The benchmark harness regenerates every table, figure and in-text
// statistic of the paper's evaluation (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for paper-vs-measured). Each benchmark prints
// its paper-shaped rows exactly once and then measures the computation.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pdcunplugged"
	"pdcunplugged/internal/coverage"
	"pdcunplugged/internal/curation"
	"pdcunplugged/internal/report"
	"pdcunplugged/internal/sim"
)

var printOnce sync.Map

// printHeadline prints s once per benchmark name across all iterations.
func printHeadline(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", s)
	}
}

func mustRepo(b *testing.B) *pdcunplugged.Repository {
	b.Helper()
	repo, err := pdcunplugged.Open()
	if err != nil {
		b.Fatal(err)
	}
	return repo
}

// BenchmarkTableI_CS2013Coverage regenerates Table I: per knowledge unit,
// the number of learning outcomes, covered outcomes, percent coverage and
// total activities.
func BenchmarkTableI_CS2013Coverage(b *testing.B) {
	repo := mustRepo(b)
	rows := pdcunplugged.TableI(repo)
	tb := report.New("TABLE I: CS2013 COVERAGE",
		"Knowledge Unit", "Num LOs", "Covered", "Percent", "Activities")
	for _, r := range rows {
		name := r.Unit.Name
		if r.Unit.Elective {
			name += " (E)"
		}
		tb.AddRow(name, r.NumOutcomes, r.CoveredOutcomes, r.PercentCoverage(), r.TotalActivities)
	}
	printHeadline("tableI", tb.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = pdcunplugged.TableI(repo)
	}
	_ = rows
}

// BenchmarkTableII_TCPPCoverage regenerates Table II: per TCPP topic area,
// core topics, covered topics, percent coverage and total activities.
func BenchmarkTableII_TCPPCoverage(b *testing.B) {
	repo := mustRepo(b)
	rows := pdcunplugged.TableII(repo)
	tb := report.New("TABLE II: TCPP COVERAGE",
		"Topic Area", "Num Topics", "Covered", "Percent", "Activities")
	for _, r := range rows {
		tb.AddRow(r.Area.Name, r.NumTopics, r.CoveredTopics, r.PercentCoverage(), r.TotalActivities)
	}
	printHeadline("tableII", tb.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = pdcunplugged.TableII(repo)
	}
	_ = rows
}

// BenchmarkFig1_ActivityTemplate regenerates Fig. 1: the activity Markdown
// template a contributor scaffolds.
func BenchmarkFig1_ActivityTemplate(b *testing.B) {
	tmpl := pdcunplugged.ActivityTemplate("example")
	printHeadline("fig1", "FIG. 1: ACTIVITY MARKDOWN TEMPLATE\n"+tmpl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl = pdcunplugged.ActivityTemplate("example")
	}
	_ = tmpl
}

// BenchmarkFig2_HeaderParse regenerates Fig. 2: parsing the
// FindSmallestCard front-matter header.
func BenchmarkFig2_HeaderParse(b *testing.B) {
	content := pdcunplugged.CorpusFiles()["findsmallestcard"]
	header := content[:strings.Index(content[4:], "---")+7]
	printHeadline("fig2", "FIG. 2: FINDSMALLESTCARD HEADER\n"+header)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdcunplugged.ParseActivity("findsmallestcard", content); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_HeaderRender regenerates Fig. 3: the rendered taxonomy
// header of the FindSmallestCard page, by building the site page.
func BenchmarkFig3_HeaderRender(b *testing.B) {
	repo := mustRepo(b)
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		b.Fatal(err)
	}
	page := string(s.Pages["activities/findsmallestcard/index.html"])
	start := strings.Index(page, `<p class="badges">`)
	end := strings.Index(page[start:], "</p>") + start + 4
	printHeadline("fig3", "FIG. 3: RENDERED HEADER (findsmallestcard)\n"+page[start:end])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdcunplugged.BuildSite(repo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStats_CorpusSize regenerates the Section III-A corpus headline:
// "nearly forty unique activities".
func BenchmarkStats_CorpusSize(b *testing.B) {
	repo := mustRepo(b)
	printHeadline("corpus", fmt.Sprintf("III-A: corpus holds %d unique activities (paper: 'nearly forty')", repo.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdcunplugged.Load(pdcunplugged.CorpusFiles()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStats_CourseCounts regenerates the Section III-A course counts.
func BenchmarkStats_CourseCounts(b *testing.B) {
	repo := mustRepo(b)
	counts := pdcunplugged.CourseCounts(repo)
	tb := report.New("III-A: ACTIVITIES PER RECOMMENDED COURSE", "Course", "Activities")
	for _, c := range counts {
		tb.AddRow(c.Term, c.Count)
	}
	printHeadline("courses", tb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts = pdcunplugged.CourseCounts(repo)
	}
	_ = counts
}

// BenchmarkStats_ExternalResources regenerates the Section III-A
// external-resource share ("less than half (41%)").
func BenchmarkStats_ExternalResources(b *testing.B) {
	repo := mustRepo(b)
	s := coverage.Resources(repo)
	printHeadline("resources", fmt.Sprintf("III-A: %d/%d activities (%.1f%%) have external resources (paper prints 41%%)",
		s.WithResources, s.Total, s.Percent()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = coverage.Resources(repo)
	}
	_ = s
}

// BenchmarkStats_SparseKUs regenerates the Section III-B sparse-unit
// narrative: cloud 3 activities / 1 outcome, distributed 2 / 1, formal
// models 1 / 1, and the Parallel Fundamentals anomaly.
func BenchmarkStats_SparseKUs(b *testing.B) {
	repo := mustRepo(b)
	rows := pdcunplugged.TableI(repo)
	var lines []string
	for _, r := range rows {
		switch r.Unit.Abbrev {
		case "CC", "DS", "FMS", "PF":
			lines = append(lines, fmt.Sprintf("  %-40s %d activities covering %d outcome(s)",
				r.Unit.Name, r.TotalActivities, r.CoveredOutcomes))
		}
	}
	printHeadline("sparse", "III-B: SPARSE KNOWLEDGE UNITS\n"+strings.Join(lines, "\n"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = pdcunplugged.TableI(repo)
	}
	_ = rows
}

// BenchmarkStats_TCPPSubcategories regenerates the Section III-C
// sub-category coverage analysis.
func BenchmarkStats_TCPPSubcategories(b *testing.B) {
	repo := mustRepo(b)
	rows := pdcunplugged.Subcategories(repo)
	tb := report.New("III-C: TCPP SUB-CATEGORY COVERAGE",
		"Area", "Sub-category", "Topics", "Covered", "Percent")
	for _, r := range rows {
		tb.AddRow(r.Area, r.Subcategory, r.NumTopics, r.CoveredTopics, r.PercentCoverage())
	}
	printHeadline("subcats", tb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = pdcunplugged.Subcategories(repo)
	}
	_ = rows
}

// BenchmarkStats_Mediums regenerates the Section III-D medium counts.
func BenchmarkStats_Mediums(b *testing.B) {
	repo := mustRepo(b)
	counts := pdcunplugged.MediumCounts(repo)
	tb := report.New("III-D: ACTIVITIES PER MEDIUM", "Medium", "Activities")
	for _, c := range counts {
		tb.AddRow(c.Term, c.Count)
	}
	printHeadline("mediums", tb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts = pdcunplugged.MediumCounts(repo)
	}
	_ = counts
}

// BenchmarkStats_Senses regenerates the Section III-D sense percentages.
func BenchmarkStats_Senses(b *testing.B) {
	repo := mustRepo(b)
	stats := pdcunplugged.SenseStats(repo)
	tb := report.New("III-D: SENSES ENGAGED", "Sense", "Activities", "Percent")
	for _, s := range stats {
		tb.AddRow(s.Sense, s.Count, s.Percent)
	}
	printHeadline("senses", tb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats = pdcunplugged.SenseStats(repo)
	}
	_ = stats
}

// runSim is a helper: run a dramatization inside a benchmark and fail on
// invariant violations.
func runSim(b *testing.B, name string, cfg sim.Config) *sim.Report {
	b.Helper()
	rep, err := pdcunplugged.Simulate(name, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if !rep.OK {
		b.Fatalf("%s invariant violated: %s", name, rep.Summary())
	}
	return rep
}

// BenchmarkSim_FindSmallestCard sweeps class sizes: ceil(log2 n) rounds vs
// n-1 serial comparisons (sim-1 in DESIGN.md).
func BenchmarkSim_FindSmallestCard(b *testing.B) {
	tb := report.New("SIM-1: FINDSMALLESTCARD ROUNDS VS COMPARISONS",
		"Students", "Serial cmps", "Rounds", "Cmps/round speedup")
	for _, n := range []int{8, 32, 128, 512, 1024} {
		rep := runSim(b, "findsmallestcard", sim.Config{Participants: n, Seed: 1})
		sp, _ := rep.Metrics.Gauge("speedup_comparisons_per_round")
		tb.AddRow(n, rep.Metrics.Count("serial_comparisons"), rep.Metrics.Count("rounds"), sp)
	}
	printHeadline("sim1", tb.String())
	for _, n := range []int{8, 128, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, "findsmallestcard", sim.Config{Participants: n, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkSim_OddEvenSort sweeps line lengths: n parallel rounds vs
// O(n^2) serial comparisons (sim-2).
func BenchmarkSim_OddEvenSort(b *testing.B) {
	tb := report.New("SIM-2: ODD-EVEN TRANSPOSITION",
		"Students", "Rounds", "Bound n+2", "Bubble cmps", "Speedup vs bubble")
	for _, n := range []int{8, 16, 32, 64, 128} {
		rep := runSim(b, "oddeven", sim.Config{Participants: n, Seed: 1})
		sp, _ := rep.Metrics.Gauge("speedup_vs_bubble")
		tb.AddRow(n, rep.Metrics.Count("rounds"), n+2, rep.Metrics.Count("serial_comparisons"), sp)
	}
	printHeadline("sim2", tb.String())
	for _, n := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, "oddeven", sim.Config{Participants: n, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkSim_RadixSort sweeps worker counts per digit pass (sim-3).
func BenchmarkSim_RadixSort(b *testing.B) {
	tb := report.New("SIM-3: PARALLEL RADIX SORT", "Cards", "Workers", "Passes", "Span/pass")
	for _, w := range []int{1, 2, 4, 8} {
		rep := runSim(b, "radixsort", sim.Config{Participants: 512, Workers: w, Seed: 1})
		span, _ := rep.Metrics.Gauge("parallel_span_per_pass")
		tb.AddRow(512, w, rep.Metrics.Count("passes"), span)
	}
	printHeadline("sim3", tb.String())
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, "radixsort", sim.Config{Participants: 512, Workers: w, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkSim_JuiceRace: lost updates without mutual exclusion vs with
// (sim-4).
func BenchmarkSim_JuiceRace(b *testing.B) {
	tb := report.New("SIM-4: JUICE-SWEETENING RACE",
		"Robots", "Expected", "Unsync lost", "Mutex lost")
	for _, robots := range []int{2, 4, 8, 16} {
		rep := runSim(b, "juicerace", sim.Config{Participants: robots, Seed: 1})
		exp, _ := rep.Metrics.Gauge("expected_sweetness")
		tb.AddRow(robots, exp, rep.Metrics.Count("lost_updates_unsync"), rep.Metrics.Count("lost_updates_mutex"))
	}
	printHeadline("sim4", tb.String())
	b.Run("robots=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSim(b, "juicerace", sim.Config{Participants: 8, Seed: int64(i)})
		}
	})
}

// BenchmarkSim_ConcertTickets: oversell anomaly vs locked protocol (sim-5).
func BenchmarkSim_ConcertTickets(b *testing.B) {
	tb := report.New("SIM-5: CONCERT TICKETS",
		"Booths", "House", "Naive oversold", "Locked sold")
	for _, booths := range []int{2, 4, 8, 16} {
		rep := runSim(b, "concerttickets", sim.Config{Participants: booths, Seed: 1})
		tb.AddRow(booths, 100, rep.Metrics.Count("oversold_naive"), rep.Metrics.Count("sold_locked"))
	}
	printHeadline("sim5", tb.String())
	b.Run("booths=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSim(b, "concerttickets", sim.Config{Participants: 8, Seed: int64(i)})
		}
	})
}

// BenchmarkSim_TokenRing: stabilization cost across ring sizes (sim-6).
func BenchmarkSim_TokenRing(b *testing.B) {
	tb := report.New("SIM-6: SELF-STABILIZING TOKEN RING",
		"Machines", "Initial tokens", "Moves to stabilize", "Bound 4n^2")
	for _, n := range []int{4, 8, 16, 32} {
		rep := runSim(b, "tokenring", sim.Config{Participants: n, Seed: 1})
		tb.AddRow(n, rep.Metrics.Count("initial_tokens"), rep.Metrics.Count("stabilization_steps"), 4*n*n)
	}
	printHeadline("sim6", tb.String())
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, "tokenring", sim.Config{Participants: n, Seed: int64(i)})
			}
		})
	}
}

// BenchmarkSim_Analogies regenerates the analogy curves (sim-7): Amdahl
// speedups, load-balance makespans, communication-overhead turnaround and
// the alpha-beta fit.
func BenchmarkSim_Analogies(b *testing.B) {
	amdahl := runSim(b, "amdahl", sim.Config{Workers: 16, Seed: 1})
	tb := report.New("SIM-7a: AMDAHL'S CHOCOLATE BAR (serial fraction 0.1)",
		"Helpers", "Measured speedup", "Amdahl prediction")
	for _, p := range []int{1, 2, 4, 8, 16} {
		m, _ := amdahl.Metrics.Gauge(fmt.Sprintf("speedup_p%d", p))
		a, _ := amdahl.Metrics.Gauge(fmt.Sprintf("amdahl_p%d", p))
		tb.AddRow(p, m, a)
	}
	printHeadline("sim7a", tb.String())

	lb := runSim(b, "loadbalance", sim.Config{Seed: 1})
	tb2 := report.New("SIM-7b: CHORE-CHART LOAD BALANCING", "Strategy", "Makespan")
	tb2.AddRow("equal chore counts", lb.Metrics.Count("equal_count_makespan"))
	tb2.AddRow("equal time (LPT)", lb.Metrics.Count("equal_time_makespan"))
	tb2.AddRow("dynamic pulling", lb.Metrics.Count("dynamic_makespan"))
	tb2.AddRow("lower bound", lb.Metrics.Count("lower_bound"))
	printHeadline("sim7b", tb2.String())

	co := runSim(b, "commoverhead", sim.Config{Workers: 64, Seed: 1})
	best, _ := co.Metrics.Gauge("best_workers")
	turn, _ := co.Metrics.Gauge("turnaround_workers")
	sp, _ := co.Metrics.Gauge("speedup_at_best")
	printHeadline("sim7c", fmt.Sprintf(
		"SIM-7c: COMMUNICATION OVERHEAD: best at %.0f workers (speedup %.2f); slower past %.0f workers",
		best, sp, turn))

	pc := runSim(b, "phonecall", sim.Config{Seed: 1})
	aHat, _ := pc.Metrics.Gauge("alpha_fitted")
	bHat, _ := pc.Metrics.Gauge("beta_fitted")
	printHeadline("sim7d", fmt.Sprintf(
		"SIM-7d: PHONE-CALL ALPHA-BETA FIT: alpha %.1f, beta %.3f (true 120, 0.75)", aHat, bHat))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSim(b, "amdahl", sim.Config{Workers: 16, Seed: int64(i)})
	}
}

// BenchmarkSim_Remaining exercises every other registered dramatization so
// the bench run covers the full inventory.
func BenchmarkSim_Remaining(b *testing.B) {
	names := []string{"cardsort", "gardeners", "leaderelection", "gcmark",
		"nondetsort", "byzantine", "pipeline", "barrier", "sharedmem",
		"collectives", "scan", "recursiontree", "websearch", "simdgame"}
	var lines []string
	for _, name := range names {
		rep := runSim(b, name, sim.Config{Seed: 1})
		lines = append(lines, "  "+rep.Summary())
	}
	printHeadline("simrest", "SIM INVENTORY (remaining dramatizations)\n"+strings.Join(lines, "\n"))
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, name, sim.Config{Seed: int64(i)})
			}
		})
	}
}

// BenchmarkSiteBuild measures rendering the full static site.
func BenchmarkSiteBuild(b *testing.B) {
	repo := mustRepo(b)
	s, err := pdcunplugged.BuildSite(repo)
	if err != nil {
		b.Fatal(err)
	}
	printHeadline("site", fmt.Sprintf("SITE: %d pages generated from %d activities", s.Len(), repo.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdcunplugged.BuildSite(repo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSiteBuildParallel measures the page-graph pipeline at fixed
// pool sizes. Every iteration uses a fresh builder, so the page cache
// never helps: this isolates the worker-pool speedup.
func BenchmarkSiteBuildParallel(b *testing.B) {
	repo := mustRepo(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pdcunplugged.BuildSiteParallel(repo, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSiteRebuild contrasts a cold build with the two incremental
// paths of a long-lived builder: a no-op rebuild (every job a cache hit)
// and a rebuild after touching one activity (10 of 85 jobs re-render).
func BenchmarkSiteRebuild(b *testing.B) {
	files := curation.Files()
	touched := curation.Files()
	touched["findsmallestcard"] += "\n- Rebuild benchmark citation.\n"
	repoFrom := func(fs map[string]string) *pdcunplugged.Repository {
		repo, err := pdcunplugged.Load(fs)
		if err != nil {
			b.Fatal(err)
		}
		return repo
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{}).Build(repoFrom(files)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-unchanged", func(b *testing.B) {
		builder := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{})
		if _, err := builder.Build(repoFrom(files)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := builder.Build(repoFrom(files)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-touch-one", func(b *testing.B) {
		builder := pdcunplugged.NewSiteBuilder(pdcunplugged.SiteBuildOptions{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate between the two corpora so every iteration sees
			// exactly one changed activity relative to the cached build.
			src := files
			if i%2 == 0 {
				src = touched
			}
			if _, err := builder.Build(repoFrom(src)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusLoad measures the full Markdown pipeline: render all 38
// activities and parse them back into an indexed repository.
func BenchmarkCorpusLoad(b *testing.B) {
	files := curation.Files()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdcunplugged.Load(files); err != nil {
			b.Fatal(err)
		}
	}
}
